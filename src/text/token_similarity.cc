#include "text/token_similarity.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "text/jaro.h"
#include "text/ngram.h"
#include "text/scratch.h"

namespace skyex::text {

namespace {

// ---------------------------------------------------------------------------
// Packed n-gram codes.
//
// The bigram measures (cosine / jaccard / dice / skipgram) only ever compare
// gram multisets for equality and multiplicity, and their scores are ratios
// of integer counts (every intermediate double is an exact integer < 2^53),
// so replacing the reference's std::map<std::string,int> with sorted integer
// codes is bit-identical. 2-character grams get a disjoint code namespace
// (bit 17) from the single-character whole-string gram a short input yields,
// so no collision is possible for any byte values.
// ---------------------------------------------------------------------------

constexpr uint32_t kTwoCharGram = 1u << 17;

inline uint32_t PackGram2(char c0, char c1) {
  return kTwoCharGram |
         (static_cast<uint32_t>(static_cast<uint8_t>(c0)) << 8) |
         static_cast<uint32_t>(static_cast<uint8_t>(c1));
}

// Character bigrams, same multiset as CharNgrams(input, 2).
void PackBigrams(std::string_view input, std::vector<uint32_t>* out) {
  out->clear();
  if (input.empty()) return;
  if (input.size() < 2) {
    out->push_back(static_cast<uint8_t>(input[0]));
    return;
  }
  out->reserve(input.size() - 1);
  for (size_t i = 0; i + 2 <= input.size(); ++i) {
    out->push_back(PackGram2(input[i], input[i + 1]));
  }
  std::sort(out->begin(), out->end());
}

// Skip-grams with skips 0..max_skip, same multiset as SkipGrams(). The
// whole-string fallback for 1-character inputs packs as a single-char code.
void PackSkipGrams(std::string_view input, size_t max_skip,
                   std::vector<uint32_t>* out) {
  out->clear();
  for (size_t i = 0; i < input.size(); ++i) {
    for (size_t skip = 0; skip <= max_skip; ++skip) {
      const size_t j = i + 1 + skip;
      if (j >= input.size()) break;
      out->push_back(PackGram2(input[i], input[j]));
    }
  }
  if (out->empty() && !input.empty()) {
    out->push_back(static_cast<uint8_t>(input[0]));
  }
  std::sort(out->begin(), out->end());
}

// Multiset intersection size of two sorted code arrays.
size_t SortedIntersection(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  return inter;
}

double SortedJaccard(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t inter = SortedIntersection(a, b);
  const size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double SquaredRunNorm(const std::vector<uint32_t>& a) {
  double norm = 0.0;
  size_t i = 0;
  while (i < a.size()) {
    size_t run = 1;
    while (i + run < a.size() && a[i + run] == a[i]) ++run;
    norm += static_cast<double>(run) * static_cast<double>(run);
    i += run;
  }
  return norm;
}

}  // namespace

double CosineNgramSimilarity(std::string_view a, std::string_view b,
                             size_t n) {
  if (n != 2) {
    // Only the bigram case is on the hot path; other n keep the simple form.
    return MultisetCosine(CharNgrams(a, n), CharNgrams(b, n));
  }
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  ScratchArena& s = ScratchArena::Get();
  PackBigrams(a, &s.grams_a);
  PackBigrams(b, &s.grams_b);
  const double norm_a = SquaredRunNorm(s.grams_a);
  const double norm_b = SquaredRunNorm(s.grams_b);
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < s.grams_a.size() && j < s.grams_b.size()) {
    if (s.grams_a[i] < s.grams_b[j]) {
      ++i;
    } else if (s.grams_b[j] < s.grams_a[i]) {
      ++j;
    } else {
      const uint32_t code = s.grams_a[i];
      size_t ra = 0;
      while (i + ra < s.grams_a.size() && s.grams_a[i + ra] == code) ++ra;
      size_t rb = 0;
      while (j + rb < s.grams_b.size() && s.grams_b[j + rb] == code) ++rb;
      dot += static_cast<double>(ra) * static_cast<double>(rb);
      i += ra;
      j += rb;
    }
  }
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  // Rounding can push identical vectors epsilon above 1.
  return std::min(1.0, dot / (std::sqrt(norm_a) * std::sqrt(norm_b)));
}

double JaccardNgramSimilarity(std::string_view a, std::string_view b,
                              size_t n) {
  if (n != 2) {
    return MultisetJaccard(CharNgrams(a, n), CharNgrams(b, n));
  }
  ScratchArena& s = ScratchArena::Get();
  PackBigrams(a, &s.grams_a);
  PackBigrams(b, &s.grams_b);
  return SortedJaccard(s.grams_a, s.grams_b);
}

double DiceBigramSimilarity(std::string_view a, std::string_view b) {
  ScratchArena& s = ScratchArena::Get();
  PackBigrams(a, &s.grams_a);
  PackBigrams(b, &s.grams_b);
  if (s.grams_a.empty() && s.grams_b.empty()) return 1.0;
  if (s.grams_a.empty() || s.grams_b.empty()) return 0.0;
  const size_t inter = SortedIntersection(s.grams_a, s.grams_b);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(s.grams_a.size() + s.grams_b.size());
}

double SkipgramSimilarity(std::string_view a, std::string_view b) {
  ScratchArena& s = ScratchArena::Get();
  PackSkipGrams(a, 2, &s.grams_a);
  PackSkipGrams(b, 2, &s.grams_b);
  return SortedJaccard(s.grams_a, s.grams_b);
}

namespace {

double MongeElkanDirected(const std::vector<std::string_view>& from,
                          const std::vector<std::string_view>& to) {
  if (from.empty()) return to.empty() ? 1.0 : 0.0;
  if (to.empty()) return 0.0;
  double total = 0.0;
  for (const std::string_view t1 : from) {
    double best = 0.0;
    for (const std::string_view t2 : to) {
      best = std::max(best, JaroWinklerSimilarity(t1, t2));
    }
    total += best;
  }
  return total / static_cast<double>(from.size());
}

}  // namespace

double MongeElkanSimilarity(std::string_view a, std::string_view b) {
  ScratchArena& s = ScratchArena::Get();
  TokenizeViews(a, &s.tok_a);
  TokenizeViews(b, &s.tok_b);
  return 0.5 * (MongeElkanDirected(s.tok_a, s.tok_b) +
                MongeElkanDirected(s.tok_b, s.tok_a));
}

double SoftJaccardSimilarity(std::string_view a, std::string_view b,
                             double threshold) {
  ScratchArena& s = ScratchArena::Get();
  TokenizeViews(a, &s.tok_a);
  TokenizeViews(b, &s.tok_b);
  const std::vector<std::string_view>& ta = s.tok_a;
  const std::vector<std::string_view>& tb = s.tok_b;
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;

  // Greedy best-first matching of token pairs above the threshold. The
  // candidate order, comparator, and accumulation order match the reference
  // exactly, so the greedy alignment (and its float sums) are identical.
  s.align_candidates.clear();
  for (size_t i = 0; i < ta.size(); ++i) {
    for (size_t j = 0; j < tb.size(); ++j) {
      const double sim = JaroWinklerSimilarity(ta[i], tb[j]);
      if (sim >= threshold) {
        s.align_candidates.push_back(
            {sim, static_cast<uint32_t>(i), static_cast<uint32_t>(j)});
      }
    }
  }
  std::sort(s.align_candidates.begin(), s.align_candidates.end(),
            [](const ScratchArena::PairCandidate& x,
               const ScratchArena::PairCandidate& y) { return x.sim > y.sim; });
  s.align_used_a.assign(ta.size(), 0);
  s.align_used_b.assign(tb.size(), 0);
  double matched_weight = 0.0;
  size_t matched = 0;
  for (const ScratchArena::PairCandidate& c : s.align_candidates) {
    if (s.align_used_a[c.i] != 0 || s.align_used_b[c.j] != 0) continue;
    s.align_used_a[c.i] = 1;
    s.align_used_b[c.j] = 1;
    matched_weight += c.sim;
    ++matched;
  }
  const double denom =
      static_cast<double>(ta.size() + tb.size() - matched);
  return denom == 0.0 ? 1.0 : matched_weight / denom;
}

namespace {

// Token similarity with abbreviation handling: a single-letter token
// matches the initial of a longer token perfectly.
double DaviesTokenSim(std::string_view t1, std::string_view t2) {
  if (t1.size() == 1 && !t2.empty() && t1[0] == t2[0]) return 1.0;
  if (t2.size() == 1 && !t1.empty() && t2[0] == t1[0]) return 1.0;
  return JaroWinklerSimilarity(t1, t2);
}

}  // namespace

double DaviesDeSallesSimilarity(std::string_view a, std::string_view b) {
  ScratchArena& s = ScratchArena::Get();
  TokenizeViews(a, &s.tok_a);
  TokenizeViews(b, &s.tok_b);
  const std::vector<std::string_view>& ta = s.tok_a;
  const std::vector<std::string_view>& tb = s.tok_b;
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;

  s.align_candidates.clear();
  s.align_candidates.reserve(ta.size() * tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    for (size_t j = 0; j < tb.size(); ++j) {
      s.align_candidates.push_back({DaviesTokenSim(ta[i], tb[j]),
                                    static_cast<uint32_t>(i),
                                    static_cast<uint32_t>(j)});
    }
  }
  std::sort(s.align_candidates.begin(), s.align_candidates.end(),
            [](const ScratchArena::PairCandidate& x,
               const ScratchArena::PairCandidate& y) { return x.sim > y.sim; });

  // Greedy alignment; unmatched tokens contribute similarity 0 with their
  // own length as weight.
  s.align_used_a.assign(ta.size(), 0);
  s.align_used_b.assign(tb.size(), 0);
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (const ScratchArena::PairCandidate& c : s.align_candidates) {
    if (s.align_used_a[c.i] != 0 || s.align_used_b[c.j] != 0) continue;
    s.align_used_a[c.i] = 1;
    s.align_used_b[c.j] = 1;
    const double w =
        static_cast<double>(ta[c.i].size() + tb[c.j].size()) / 2.0;
    weighted_sum += c.sim * w;
    weight_total += w;
  }
  for (size_t i = 0; i < ta.size(); ++i) {
    if (s.align_used_a[i] == 0) {
      weight_total += static_cast<double>(ta[i].size());
    }
  }
  for (size_t j = 0; j < tb.size(); ++j) {
    if (s.align_used_b[j] == 0) {
      weight_total += static_cast<double>(tb[j].size());
    }
  }
  return weight_total == 0.0 ? 1.0 : weighted_sum / weight_total;
}

}  // namespace skyex::text
