#include "text/token_similarity.h"

#include <algorithm>
#include <string>
#include <vector>

#include "text/jaro.h"
#include "text/ngram.h"
#include "text/tokenize.h"

namespace skyex::text {

double CosineNgramSimilarity(std::string_view a, std::string_view b,
                             size_t n) {
  return MultisetCosine(CharNgrams(a, n), CharNgrams(b, n));
}

double JaccardNgramSimilarity(std::string_view a, std::string_view b,
                              size_t n) {
  return MultisetJaccard(CharNgrams(a, n), CharNgrams(b, n));
}

double DiceBigramSimilarity(std::string_view a, std::string_view b) {
  return MultisetDice(CharNgrams(a, 2), CharNgrams(b, 2));
}

double SkipgramSimilarity(std::string_view a, std::string_view b) {
  return MultisetJaccard(SkipGrams(a, 2), SkipGrams(b, 2));
}

namespace {

double MongeElkanDirected(const std::vector<std::string>& from,
                          const std::vector<std::string>& to) {
  if (from.empty()) return to.empty() ? 1.0 : 0.0;
  if (to.empty()) return 0.0;
  double total = 0.0;
  for (const std::string& t1 : from) {
    double best = 0.0;
    for (const std::string& t2 : to) {
      best = std::max(best, JaroWinklerSimilarity(t1, t2));
    }
    total += best;
  }
  return total / static_cast<double>(from.size());
}

}  // namespace

double MongeElkanSimilarity(std::string_view a, std::string_view b) {
  const std::vector<std::string> ta = Tokenize(a);
  const std::vector<std::string> tb = Tokenize(b);
  return 0.5 * (MongeElkanDirected(ta, tb) + MongeElkanDirected(tb, ta));
}

double SoftJaccardSimilarity(std::string_view a, std::string_view b,
                             double threshold) {
  const std::vector<std::string> ta = Tokenize(a);
  const std::vector<std::string> tb = Tokenize(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;

  // Greedy best-first matching of token pairs above the threshold.
  struct Candidate {
    double sim;
    size_t i;
    size_t j;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < ta.size(); ++i) {
    for (size_t j = 0; j < tb.size(); ++j) {
      const double sim = JaroWinklerSimilarity(ta[i], tb[j]);
      if (sim >= threshold) candidates.push_back({sim, i, j});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              return x.sim > y.sim;
            });
  std::vector<bool> used_a(ta.size(), false);
  std::vector<bool> used_b(tb.size(), false);
  double matched_weight = 0.0;
  size_t matched = 0;
  for (const Candidate& c : candidates) {
    if (used_a[c.i] || used_b[c.j]) continue;
    used_a[c.i] = true;
    used_b[c.j] = true;
    matched_weight += c.sim;
    ++matched;
  }
  const double denom =
      static_cast<double>(ta.size() + tb.size() - matched);
  return denom == 0.0 ? 1.0 : matched_weight / denom;
}

namespace {

// Token similarity with abbreviation handling: a single-letter token
// matches the initial of a longer token perfectly.
double DaviesTokenSim(const std::string& t1, const std::string& t2) {
  if (t1.size() == 1 && !t2.empty() && t1[0] == t2[0]) return 1.0;
  if (t2.size() == 1 && !t1.empty() && t2[0] == t1[0]) return 1.0;
  return JaroWinklerSimilarity(t1, t2);
}

}  // namespace

double DaviesDeSallesSimilarity(std::string_view a, std::string_view b) {
  const std::vector<std::string> ta = Tokenize(a);
  const std::vector<std::string> tb = Tokenize(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;

  struct Candidate {
    double sim;
    size_t i;
    size_t j;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(ta.size() * tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    for (size_t j = 0; j < tb.size(); ++j) {
      candidates.push_back({DaviesTokenSim(ta[i], tb[j]), i, j});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              return x.sim > y.sim;
            });

  // Greedy alignment; unmatched tokens contribute similarity 0 with their
  // own length as weight.
  std::vector<bool> used_a(ta.size(), false);
  std::vector<bool> used_b(tb.size(), false);
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (const Candidate& c : candidates) {
    if (used_a[c.i] || used_b[c.j]) continue;
    used_a[c.i] = true;
    used_b[c.j] = true;
    const double w =
        static_cast<double>(ta[c.i].size() + tb[c.j].size()) / 2.0;
    weighted_sum += c.sim * w;
    weight_total += w;
  }
  for (size_t i = 0; i < ta.size(); ++i) {
    if (!used_a[i]) weight_total += static_cast<double>(ta[i].size());
  }
  for (size_t j = 0; j < tb.size(); ++j) {
    if (!used_b[j]) weight_total += static_cast<double>(tb[j].size());
  }
  return weight_total == 0.0 ? 1.0 : weighted_sum / weight_total;
}

}  // namespace skyex::text
