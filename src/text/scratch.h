#ifndef SKYEX_TEXT_SCRATCH_H_
#define SKYEX_TEXT_SCRATCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

// Per-thread scratch arena for the string-similarity kernels.
//
// The optimized kernels reuse these buffers instead of allocating per call;
// each buffer grows to the high-water mark of its thread and stays there.
//
// Re-entrancy contract: buffers are partitioned by kernel family, and the
// only kernels invoked re-entrantly are Jaro / Jaro-Winkler (from the
// token-alignment measures, the reversed/permuted variants, and the sketch-
// free token kernels). Jaro touches only `jw_*`; every caller of Jaro uses
// buffers outside that group, so one arena per thread suffices. A kernel
// must never call a kernel of its own family while holding views into its
// family's buffers.

namespace skyex::text {

struct ScratchArena {
  // Jaro match flags (jw_* — reserved for Jaro/Jaro-Winkler only; the
  // flag vectors serve the > 64-character fallback path).
  std::vector<uint8_t> jw_matched_a;
  std::vector<uint8_t> jw_matched_b;

  // Bit-parallel Jaro occurrence masks (strings ≤ 64 chars): mask[c]
  // holds the b-side positions of character c, valid only while
  // stamp[c] == generation — stamp-clearing avoids a 2 KiB memset per
  // call.
  uint64_t jw_char_mask[256] = {};
  uint32_t jw_char_stamp[256] = {};
  uint32_t jw_generation = 0;

  // Edit-distance DP rows (two needed for Levenshtein, three for the
  // optimal-string-alignment Damerau variant).
  std::vector<uint32_t> ed_rows[3];

  // Reversed-string buffers (ReversedJaroWinkler).
  std::string rev_a;
  std::string rev_b;

  // Token permutation state (PermutedJaroWinkler).
  std::vector<std::string_view> perm_tokens;
  std::string perm_joined;

  // Packed n-gram codes (cosine/jaccard/dice bigrams, skip-grams).
  std::vector<uint32_t> grams_a;
  std::vector<uint32_t> grams_b;

  // Token views for the alignment measures (Monge-Elkan, SoftJaccard,
  // Davies-DeSalles).
  std::vector<std::string_view> tok_a;
  std::vector<std::string_view> tok_b;

  // Greedy-alignment candidate pairs + used flags.
  struct PairCandidate {
    double sim;
    uint32_t i;
    uint32_t j;
  };
  std::vector<PairCandidate> align_candidates;
  std::vector<uint8_t> align_used_a;
  std::vector<uint8_t> align_used_b;

  /// The calling thread's arena.
  static ScratchArena& Get();
};

/// Splits `input` on whitespace into views over `input` (no allocation
/// beyond `out` growth). Same token boundaries as Tokenize().
void TokenizeViews(std::string_view input, std::vector<std::string_view>* out);

}  // namespace skyex::text

#endif  // SKYEX_TEXT_SCRATCH_H_
