#ifndef SKYEX_TEXT_TOKEN_SIMILARITY_H_
#define SKYEX_TEXT_TOKEN_SIMILARITY_H_

#include <string_view>

namespace skyex::text {

/// Cosine similarity over character n-gram count vectors (default n = 2).
double CosineNgramSimilarity(std::string_view a, std::string_view b,
                             size_t n = 2);

/// Multiset Jaccard similarity over character n-grams (default n = 2).
double JaccardNgramSimilarity(std::string_view a, std::string_view b,
                              size_t n = 2);

/// Dice coefficient over character bigrams.
double DiceBigramSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity over skip-grams (skip up to 2 characters).
double SkipgramSimilarity(std::string_view a, std::string_view b);

/// Symmetric Monge-Elkan: for each token of one string, the best
/// Jaro-Winkler match in the other; averaged, then the two directions are
/// averaged.
double MongeElkanSimilarity(std::string_view a, std::string_view b);

/// Soft-Jaccard: tokens count as intersecting when their Jaro-Winkler
/// similarity reaches `threshold`; intersection weight is the sum of the
/// matched similarities.
double SoftJaccardSimilarity(std::string_view a, std::string_view b,
                             double threshold = 0.7);

/// The token alignment measure of Davis Jr. and Salles (2007), designed
/// for geographic and personal names: greedy best-pair token alignment
/// with Jaro-Winkler, abbreviation awareness (single-letter tokens match
/// token initials), length-weighted combination.
double DaviesDeSallesSimilarity(std::string_view a, std::string_view b);

}  // namespace skyex::text

#endif  // SKYEX_TEXT_TOKEN_SIMILARITY_H_
