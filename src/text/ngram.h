#ifndef SKYEX_TEXT_NGRAM_H_
#define SKYEX_TEXT_NGRAM_H_

#include <string>
#include <string_view>
#include <vector>

namespace skyex::text {

/// Extracts the character n-grams of `input` (contiguous, unpadded).
/// Strings shorter than `n` yield the whole string as a single gram.
std::vector<std::string> CharNgrams(std::string_view input, size_t n);

/// Extracts skip-grams: 2-character grams where the two characters are
/// separated by exactly 0..max_skip other characters (skip 0 == bigrams).
std::vector<std::string> SkipGrams(std::string_view input, size_t max_skip);

/// Multiset Jaccard similarity of two gram collections:
/// |A ∩ B| / |A ∪ B| counting multiplicities.
double MultisetJaccard(const std::vector<std::string>& a,
                       const std::vector<std::string>& b);

/// Multiset Dice coefficient: 2|A ∩ B| / (|A| + |B|).
double MultisetDice(const std::vector<std::string>& a,
                    const std::vector<std::string>& b);

/// Cosine similarity of the gram count vectors.
double MultisetCosine(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

}  // namespace skyex::text

#endif  // SKYEX_TEXT_NGRAM_H_
