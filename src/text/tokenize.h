#ifndef SKYEX_TEXT_TOKENIZE_H_
#define SKYEX_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace skyex::text {

/// Splits a string on whitespace into tokens. The input is expected to be
/// normalized (see Normalize); no further cleaning is performed.
std::vector<std::string> Tokenize(std::string_view input);

/// Returns the tokens of `input` sorted alphanumerically and re-joined with
/// single spaces. This is the "custom sorting" LGM-Sim applies before
/// computing the sorted similarity variants.
std::string SortTokens(std::string_view input);

/// Joins tokens with single spaces.
std::string JoinTokens(const std::vector<std::string>& tokens);

}  // namespace skyex::text

#endif  // SKYEX_TEXT_TOKENIZE_H_
