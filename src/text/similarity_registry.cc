#include "text/similarity_registry.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "text/edit_distance.h"
#include "text/jaro.h"
#include "text/reference.h"
#include "text/token_similarity.h"

namespace skyex::text {

namespace {

double JaroWinklerDefault(std::string_view a, std::string_view b) {
  return JaroWinklerSimilarity(a, b);
}

double PermutedJaroWinklerDefault(std::string_view a, std::string_view b) {
  return PermutedJaroWinklerSimilarity(a, b);
}

double CosineBigrams(std::string_view a, std::string_view b) {
  return CosineNgramSimilarity(a, b, 2);
}

double JaccardBigrams(std::string_view a, std::string_view b) {
  return JaccardNgramSimilarity(a, b, 2);
}

double SoftJaccardDefault(std::string_view a, std::string_view b) {
  return SoftJaccardSimilarity(a, b);
}

double RefJaroWinklerDefault(std::string_view a, std::string_view b) {
  return reference::JaroWinklerSimilarity(a, b);
}

double RefPermutedJaroWinklerDefault(std::string_view a, std::string_view b) {
  return reference::PermutedJaroWinklerSimilarity(a, b);
}

double RefCosineBigrams(std::string_view a, std::string_view b) {
  return reference::CosineNgramSimilarity(a, b, 2);
}

double RefJaccardBigrams(std::string_view a, std::string_view b) {
  return reference::JaccardNgramSimilarity(a, b, 2);
}

double RefSoftJaccardDefault(std::string_view a, std::string_view b) {
  return reference::SoftJaccardSimilarity(a, b);
}

// -1 = not yet initialized (consult SKYEX_TEXT_KERNELS on first read).
std::atomic<int> g_kernel_impl{-1};

KernelImpl ActiveKernelImplSlow() {
  const char* env = std::getenv("SKYEX_TEXT_KERNELS");
  const KernelImpl impl =
      (env != nullptr && std::strcmp(env, "reference") == 0)
          ? KernelImpl::kReference
          : KernelImpl::kOptimized;
  int expected = -1;
  if (g_kernel_impl.compare_exchange_strong(expected, static_cast<int>(impl),
                                            std::memory_order_relaxed)) {
    return impl;
  }
  return static_cast<KernelImpl>(expected);
}

std::vector<NamedSimilarity> FilterSortable(
    const std::vector<NamedSimilarity>& basic) {
  std::vector<NamedSimilarity> out;
  for (const NamedSimilarity& m : basic) {
    if (m.name != "jaro_winkler_sorted") out.push_back(m);
  }
  return out;
}

const std::vector<NamedSimilarity>& BasicTable(KernelImpl impl) {
  // Both tables carry the same names in the same order — the LGM-X feature
  // schema depends only on names/positions, never on which impl is active.
  static const auto& kOptimized = *new std::vector<NamedSimilarity>{
      {"levenshtein", LevenshteinSimilarity},
      {"damerau_levenshtein", DamerauLevenshteinSimilarity},
      {"jaro", JaroSimilarity},
      {"jaro_winkler", JaroWinklerDefault},
      {"jaro_winkler_reversed", ReversedJaroWinklerSimilarity},
      {"jaro_winkler_sorted", SortedJaroWinklerSimilarity},
      {"jaro_winkler_permuted", PermutedJaroWinklerDefault},
      {"cosine_bigrams", CosineBigrams},
      {"jaccard_bigrams", JaccardBigrams},
      {"dice_bigrams", DiceBigramSimilarity},
      {"skipgram", SkipgramSimilarity},
      {"monge_elkan", MongeElkanSimilarity},
      {"soft_jaccard", SoftJaccardDefault},
      {"davies", DaviesDeSallesSimilarity},
  };
  static const auto& kReference = *new std::vector<NamedSimilarity>{
      {"levenshtein", reference::LevenshteinSimilarity},
      {"damerau_levenshtein", reference::DamerauLevenshteinSimilarity},
      {"jaro", reference::JaroSimilarity},
      {"jaro_winkler", RefJaroWinklerDefault},
      {"jaro_winkler_reversed", reference::ReversedJaroWinklerSimilarity},
      {"jaro_winkler_sorted", reference::SortedJaroWinklerSimilarity},
      {"jaro_winkler_permuted", RefPermutedJaroWinklerDefault},
      {"cosine_bigrams", RefCosineBigrams},
      {"jaccard_bigrams", RefJaccardBigrams},
      {"dice_bigrams", reference::DiceBigramSimilarity},
      {"skipgram", reference::SkipgramSimilarity},
      {"monge_elkan", reference::MongeElkanSimilarity},
      {"soft_jaccard", RefSoftJaccardDefault},
      {"davies", reference::DaviesDeSallesSimilarity},
  };
  return impl == KernelImpl::kReference ? kReference : kOptimized;
}

}  // namespace

void SetKernelImpl(KernelImpl impl) {
  g_kernel_impl.store(static_cast<int>(impl), std::memory_order_relaxed);
}

KernelImpl ActiveKernelImpl() {
  const int cached = g_kernel_impl.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<KernelImpl>(cached);
  return ActiveKernelImplSlow();
}

const std::vector<NamedSimilarity>& BasicSimilarities() {
  return BasicTable(ActiveKernelImpl());
}

const std::vector<NamedSimilarity>& SortableSimilarities() {
  static const auto& kOptimized = *new std::vector<NamedSimilarity>(
      FilterSortable(BasicTable(KernelImpl::kOptimized)));
  static const auto& kReference = *new std::vector<NamedSimilarity>(
      FilterSortable(BasicTable(KernelImpl::kReference)));
  return ActiveKernelImpl() == KernelImpl::kReference ? kReference
                                                      : kOptimized;
}

SimilarityFn FindSimilarity(std::string_view name) {
  for (const NamedSimilarity& m : BasicSimilarities()) {
    if (m.name == name) return m.fn;
  }
  return nullptr;
}

}  // namespace skyex::text
