#include "text/similarity_registry.h"

#include "text/edit_distance.h"
#include "text/jaro.h"
#include "text/token_similarity.h"

namespace skyex::text {

namespace {

double JaroWinklerDefault(std::string_view a, std::string_view b) {
  return JaroWinklerSimilarity(a, b);
}

double PermutedJaroWinklerDefault(std::string_view a, std::string_view b) {
  return PermutedJaroWinklerSimilarity(a, b);
}

double CosineBigrams(std::string_view a, std::string_view b) {
  return CosineNgramSimilarity(a, b, 2);
}

double JaccardBigrams(std::string_view a, std::string_view b) {
  return JaccardNgramSimilarity(a, b, 2);
}

double SoftJaccardDefault(std::string_view a, std::string_view b) {
  return SoftJaccardSimilarity(a, b);
}

}  // namespace

const std::vector<NamedSimilarity>& BasicSimilarities() {
  static const auto& kMeasures = *new std::vector<NamedSimilarity>{
      {"levenshtein", LevenshteinSimilarity},
      {"damerau_levenshtein", DamerauLevenshteinSimilarity},
      {"jaro", JaroSimilarity},
      {"jaro_winkler", JaroWinklerDefault},
      {"jaro_winkler_reversed", ReversedJaroWinklerSimilarity},
      {"jaro_winkler_sorted", SortedJaroWinklerSimilarity},
      {"jaro_winkler_permuted", PermutedJaroWinklerDefault},
      {"cosine_bigrams", CosineBigrams},
      {"jaccard_bigrams", JaccardBigrams},
      {"dice_bigrams", DiceBigramSimilarity},
      {"skipgram", SkipgramSimilarity},
      {"monge_elkan", MongeElkanSimilarity},
      {"soft_jaccard", SoftJaccardDefault},
      {"davies", DaviesDeSallesSimilarity},
  };
  return kMeasures;
}

const std::vector<NamedSimilarity>& SortableSimilarities() {
  static const auto& kMeasures = *new std::vector<NamedSimilarity>([] {
    std::vector<NamedSimilarity> out;
    for (const NamedSimilarity& m : BasicSimilarities()) {
      if (m.name != "jaro_winkler_sorted") out.push_back(m);
    }
    return out;
  }());
  return kMeasures;
}

SimilarityFn FindSimilarity(std::string_view name) {
  for (const NamedSimilarity& m : BasicSimilarities()) {
    if (m.name == name) return m.fn;
  }
  return nullptr;
}

}  // namespace skyex::text
