#include "text/edit_distance.h"

#include <algorithm>
#include <vector>

namespace skyex::text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  // Two-row dynamic program.
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t sub_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + sub_cost});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  // Three-row dynamic program (optimal string alignment).
  const size_t cols = b.size() + 1;
  std::vector<size_t> two_back(cols);
  std::vector<size_t> prev(cols);
  std::vector<size_t> cur(cols);
  for (size_t j = 0; j < cols; ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t sub_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + sub_cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], two_back[j - 2] + 1);
      }
    }
    std::swap(two_back, prev);
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

size_t LongestCommonSubsequence(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<size_t> prev(b.size() + 1, 0);
  std::vector<size_t> cur(b.size() + 1, 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

namespace {

double NormalizedSimilarity(size_t distance, size_t len_a, size_t len_b) {
  const size_t longest = std::max(len_a, len_b);
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(distance) / static_cast<double>(longest);
}

}  // namespace

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  return NormalizedSimilarity(LevenshteinDistance(a, b), a.size(), b.size());
}

double DamerauLevenshteinSimilarity(std::string_view a, std::string_view b) {
  return NormalizedSimilarity(DamerauLevenshteinDistance(a, b), a.size(),
                              b.size());
}

double LcsSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  return 2.0 * static_cast<double>(LongestCommonSubsequence(a, b)) /
         static_cast<double>(a.size() + b.size());
}

}  // namespace skyex::text
