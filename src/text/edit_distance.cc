#include "text/edit_distance.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "text/scratch.h"

namespace skyex::text {

// Branch-light two-row DP over per-thread scratch rows. The cell recurrence
// is pure integer arithmetic, so any evaluation order gives the same
// distances as the reference implementation (pinned bit-identical by
// tests/kernel_equiv_test.cc).
size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  if (a == b) return 0;
  const size_t cols = b.size() + 1;
  ScratchArena& s = ScratchArena::Get();
  if (s.ed_rows[0].size() < cols) s.ed_rows[0].resize(cols);
  if (s.ed_rows[1].size() < cols) s.ed_rows[1].resize(cols);
  uint32_t* prev = s.ed_rows[0].data();
  uint32_t* cur = s.ed_rows[1].data();
  for (size_t j = 0; j < cols; ++j) prev[j] = static_cast<uint32_t>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    const char ca = a[i - 1];
    cur[0] = static_cast<uint32_t>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      const uint32_t sub = prev[j - 1] + static_cast<uint32_t>(ca != b[j - 1]);
      const uint32_t ins_del = std::min(prev[j], cur[j - 1]) + 1;
      cur[j] = std::min(sub, ins_del);
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  if (a == b) return 0;
  // Three-row dynamic program (optimal string alignment).
  const size_t cols = b.size() + 1;
  ScratchArena& s = ScratchArena::Get();
  for (auto& row : s.ed_rows) {
    if (row.size() < cols) row.resize(cols);
  }
  uint32_t* two_back = s.ed_rows[0].data();
  uint32_t* prev = s.ed_rows[1].data();
  uint32_t* cur = s.ed_rows[2].data();
  for (size_t j = 0; j < cols; ++j) prev[j] = static_cast<uint32_t>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    const char ca = a[i - 1];
    cur[0] = static_cast<uint32_t>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      const uint32_t sub = prev[j - 1] + static_cast<uint32_t>(ca != b[j - 1]);
      const uint32_t ins_del = std::min(prev[j], cur[j - 1]) + 1;
      uint32_t best = std::min(sub, ins_del);
      if (i > 1 && j > 1 && ca == b[j - 2] && a[i - 2] == b[j - 1]) {
        best = std::min(best, two_back[j - 2] + 1);
      }
      cur[j] = best;
    }
    std::swap(two_back, prev);
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

size_t LongestCommonSubsequence(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<size_t> prev(b.size() + 1, 0);
  std::vector<size_t> cur(b.size() + 1, 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

namespace {

double NormalizedSimilarity(size_t distance, size_t len_a, size_t len_b) {
  const size_t longest = std::max(len_a, len_b);
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(distance) / static_cast<double>(longest);
}

}  // namespace

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  return NormalizedSimilarity(LevenshteinDistance(a, b), a.size(), b.size());
}

double DamerauLevenshteinSimilarity(std::string_view a, std::string_view b) {
  return NormalizedSimilarity(DamerauLevenshteinDistance(a, b), a.size(),
                              b.size());
}

double LcsSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  return 2.0 * static_cast<double>(LongestCommonSubsequence(a, b)) /
         static_cast<double>(a.size() + b.size());
}

}  // namespace skyex::text
