#ifndef SKYEX_TEXT_NORMALIZE_H_
#define SKYEX_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace skyex::text {

/// Folds a UTF-8 string to lower-case ASCII.
///
/// Handles the Latin-1 / Latin Extended-A accented letters that occur in
/// European place and business names (é→e, ü→u, ñ→n, ...) plus the Danish
/// and Norwegian specials (æ→ae, ø→oe, å→aa), which matters for the
/// North-DK style data the paper evaluates on. Unknown multi-byte
/// sequences are dropped; ASCII passes through lower-cased.
std::string FoldAccents(std::string_view input);

/// Replaces every character that is not a letter, digit or space with a
/// space. Intended to run on FoldAccents output (pure ASCII).
std::string StripPunctuation(std::string_view input);

/// Collapses runs of whitespace into single spaces and trims both ends.
std::string CollapseWhitespace(std::string_view input);

/// Full pre-processing used by LGM-Sim and the feature extractor:
/// accent folding, lower-casing, punctuation removal, whitespace collapse.
std::string Normalize(std::string_view input);

}  // namespace skyex::text

#endif  // SKYEX_TEXT_NORMALIZE_H_
