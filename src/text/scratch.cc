#include "text/scratch.h"

#include <cctype>

namespace skyex::text {

ScratchArena& ScratchArena::Get() {
  thread_local ScratchArena arena;
  return arena;
}

void TokenizeViews(std::string_view input,
                   std::vector<std::string_view>* out) {
  out->clear();
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() &&
           std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < input.size() &&
           !std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    if (i > start) out->push_back(input.substr(start, i - start));
  }
}

}  // namespace skyex::text
