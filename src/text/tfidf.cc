#include "text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "text/jaro.h"
#include "text/tokenize.h"

namespace skyex::text {

TfIdfWeights TfIdfWeights::Build(const std::vector<std::string>& corpus) {
  TfIdfWeights weights;
  weights.corpus_size_ = corpus.size();
  for (const std::string& doc : corpus) {
    std::unordered_set<std::string> seen;
    for (std::string& t : Tokenize(doc)) {
      if (seen.insert(t).second) ++weights.document_frequency_[t];
    }
  }
  return weights;
}

double TfIdfWeights::Idf(std::string_view term) const {
  const auto it = document_frequency_.find(std::string(term));
  const size_t df = it == document_frequency_.end() ? 0 : it->second;
  return std::log(1.0 + static_cast<double>(corpus_size_ + 1) /
                            static_cast<double>(1 + df));
}

namespace {

// Token → TF·IDF weight, L2-normalized.
std::unordered_map<std::string, double> WeightedVector(
    const TfIdfWeights& weights, std::string_view s) {
  std::unordered_map<std::string, double> vec;
  for (std::string& t : Tokenize(s)) vec[t] += 1.0;
  double norm = 0.0;
  for (auto& [term, tf] : vec) {
    tf *= weights.Idf(term);
    norm += tf * tf;
  }
  if (norm > 0.0) {
    norm = std::sqrt(norm);
    for (auto& [term, tf] : vec) tf /= norm;
  }
  return vec;
}

}  // namespace

double TfIdfCosine(const TfIdfWeights& weights, std::string_view a,
                   std::string_view b) {
  const auto va = WeightedVector(weights, a);
  const auto vb = WeightedVector(weights, b);
  if (va.empty() && vb.empty()) return 1.0;
  double dot = 0.0;
  for (const auto& [term, wa] : va) {
    const auto it = vb.find(term);
    if (it != vb.end()) dot += wa * it->second;
  }
  return std::min(1.0, dot);
}

double SoftTfIdf(const TfIdfWeights& weights, std::string_view a,
                 std::string_view b, double threshold) {
  const auto va = WeightedVector(weights, a);
  const auto vb = WeightedVector(weights, b);
  if (va.empty() && vb.empty()) return 1.0;
  if (va.empty() || vb.empty()) return 0.0;

  // CLOSE(θ): for each term of a, the most similar term of b at or
  // above the threshold contributes w_a · w_b · sim.
  double total = 0.0;
  for (const auto& [ta, wa] : va) {
    double best_sim = 0.0;
    double best_weight = 0.0;
    for (const auto& [tb, wb] : vb) {
      const double sim = JaroWinklerSimilarity(ta, tb);
      if (sim >= threshold && sim > best_sim) {
        best_sim = sim;
        best_weight = wb;
      }
    }
    total += wa * best_weight * best_sim;
  }
  return std::min(1.0, total);
}

}  // namespace skyex::text
