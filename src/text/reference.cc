#include "text/reference.h"

#include <algorithm>
#include <string>
#include <vector>

#include "text/ngram.h"
#include "text/tokenize.h"

// Verbatim copies of the pre-optimization kernels. See reference.h for why
// these must stay exactly as they are.

namespace skyex::text::reference {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t len_a = a.size();
  const size_t len_b = b.size();
  const size_t match_window =
      std::max<size_t>(1, std::max(len_a, len_b) / 2) - 1;

  std::vector<bool> matched_a(len_a, false);
  std::vector<bool> matched_b(len_b, false);
  size_t matches = 0;
  for (size_t i = 0; i < len_a; ++i) {
    const size_t lo = (i > match_window) ? i - match_window : 0;
    const size_t hi = std::min(len_b, i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!matched_b[j] && a[i] == b[j]) {
        matched_a[i] = true;
        matched_b[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions: matched characters out of order.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < len_a; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / len_a + m / len_b + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale, double boost_threshold) {
  const double jaro = JaroSimilarity(a, b);
  if (jaro < boost_threshold) return jaro;
  size_t prefix = 0;
  const size_t max_prefix = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + prefix * prefix_scale * (1.0 - jaro);
}

double ReversedJaroWinklerSimilarity(std::string_view a, std::string_view b) {
  std::string ra(a.rbegin(), a.rend());
  std::string rb(b.rbegin(), b.rend());
  return JaroWinklerSimilarity(ra, rb);
}

double SortedJaroWinklerSimilarity(std::string_view a, std::string_view b) {
  return JaroWinklerSimilarity(SortTokens(a), SortTokens(b));
}

double PermutedJaroWinklerSimilarity(std::string_view a, std::string_view b,
                                     size_t max_tokens) {
  std::vector<std::string> tokens = Tokenize(a);
  if (tokens.size() <= 1) return JaroWinklerSimilarity(a, b);
  if (tokens.size() > max_tokens) return SortedJaroWinklerSimilarity(a, b);
  std::sort(tokens.begin(), tokens.end());
  double best = 0.0;
  do {
    best = std::max(best, JaroWinklerSimilarity(JoinTokens(tokens), b));
  } while (std::next_permutation(tokens.begin(), tokens.end()));
  return best;
}

double TunedJaroWinklerSimilarity(std::string_view a, std::string_view b) {
  // Larger prefix reward, applied unconditionally (boost threshold 0).
  return JaroWinklerSimilarity(a, b, /*prefix_scale=*/0.17,
                               /*boost_threshold=*/0.0);
}

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  // Two-row dynamic program.
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t sub_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + sub_cost});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  // Three-row dynamic program (optimal string alignment).
  const size_t cols = b.size() + 1;
  std::vector<size_t> two_back(cols);
  std::vector<size_t> prev(cols);
  std::vector<size_t> cur(cols);
  for (size_t j = 0; j < cols; ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t sub_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + sub_cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], two_back[j - 2] + 1);
      }
    }
    std::swap(two_back, prev);
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

namespace {

double NormalizedSimilarity(size_t distance, size_t len_a, size_t len_b) {
  const size_t longest = std::max(len_a, len_b);
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(distance) / static_cast<double>(longest);
}

}  // namespace

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  return NormalizedSimilarity(LevenshteinDistance(a, b), a.size(), b.size());
}

double DamerauLevenshteinSimilarity(std::string_view a, std::string_view b) {
  return NormalizedSimilarity(DamerauLevenshteinDistance(a, b), a.size(),
                              b.size());
}

double CosineNgramSimilarity(std::string_view a, std::string_view b,
                             size_t n) {
  return MultisetCosine(CharNgrams(a, n), CharNgrams(b, n));
}

double JaccardNgramSimilarity(std::string_view a, std::string_view b,
                              size_t n) {
  return MultisetJaccard(CharNgrams(a, n), CharNgrams(b, n));
}

double DiceBigramSimilarity(std::string_view a, std::string_view b) {
  return MultisetDice(CharNgrams(a, 2), CharNgrams(b, 2));
}

double SkipgramSimilarity(std::string_view a, std::string_view b) {
  return MultisetJaccard(SkipGrams(a, 2), SkipGrams(b, 2));
}

namespace {

double MongeElkanDirected(const std::vector<std::string>& from,
                          const std::vector<std::string>& to) {
  if (from.empty()) return to.empty() ? 1.0 : 0.0;
  if (to.empty()) return 0.0;
  double total = 0.0;
  for (const std::string& t1 : from) {
    double best = 0.0;
    for (const std::string& t2 : to) {
      best = std::max(best, JaroWinklerSimilarity(t1, t2));
    }
    total += best;
  }
  return total / static_cast<double>(from.size());
}

}  // namespace

double MongeElkanSimilarity(std::string_view a, std::string_view b) {
  const std::vector<std::string> ta = Tokenize(a);
  const std::vector<std::string> tb = Tokenize(b);
  return 0.5 * (MongeElkanDirected(ta, tb) + MongeElkanDirected(tb, ta));
}

double SoftJaccardSimilarity(std::string_view a, std::string_view b,
                             double threshold) {
  const std::vector<std::string> ta = Tokenize(a);
  const std::vector<std::string> tb = Tokenize(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;

  // Greedy best-first matching of token pairs above the threshold.
  struct Candidate {
    double sim;
    size_t i;
    size_t j;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < ta.size(); ++i) {
    for (size_t j = 0; j < tb.size(); ++j) {
      const double sim = JaroWinklerSimilarity(ta[i], tb[j]);
      if (sim >= threshold) candidates.push_back({sim, i, j});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              return x.sim > y.sim;
            });
  std::vector<bool> used_a(ta.size(), false);
  std::vector<bool> used_b(tb.size(), false);
  double matched_weight = 0.0;
  size_t matched = 0;
  for (const Candidate& c : candidates) {
    if (used_a[c.i] || used_b[c.j]) continue;
    used_a[c.i] = true;
    used_b[c.j] = true;
    matched_weight += c.sim;
    ++matched;
  }
  const double denom =
      static_cast<double>(ta.size() + tb.size() - matched);
  return denom == 0.0 ? 1.0 : matched_weight / denom;
}

namespace {

// Token similarity with abbreviation handling: a single-letter token
// matches the initial of a longer token perfectly.
double DaviesTokenSim(const std::string& t1, const std::string& t2) {
  if (t1.size() == 1 && !t2.empty() && t1[0] == t2[0]) return 1.0;
  if (t2.size() == 1 && !t1.empty() && t2[0] == t1[0]) return 1.0;
  return JaroWinklerSimilarity(t1, t2);
}

}  // namespace

double DaviesDeSallesSimilarity(std::string_view a, std::string_view b) {
  const std::vector<std::string> ta = Tokenize(a);
  const std::vector<std::string> tb = Tokenize(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;

  struct Candidate {
    double sim;
    size_t i;
    size_t j;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(ta.size() * tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    for (size_t j = 0; j < tb.size(); ++j) {
      candidates.push_back({DaviesTokenSim(ta[i], tb[j]), i, j});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              return x.sim > y.sim;
            });

  // Greedy alignment; unmatched tokens contribute similarity 0 with their
  // own length as weight.
  std::vector<bool> used_a(ta.size(), false);
  std::vector<bool> used_b(tb.size(), false);
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (const Candidate& c : candidates) {
    if (used_a[c.i] || used_b[c.j]) continue;
    used_a[c.i] = true;
    used_b[c.j] = true;
    const double w =
        static_cast<double>(ta[c.i].size() + tb[c.j].size()) / 2.0;
    weighted_sum += c.sim * w;
    weight_total += w;
  }
  for (size_t i = 0; i < ta.size(); ++i) {
    if (!used_a[i]) weight_total += static_cast<double>(ta[i].size());
  }
  for (size_t j = 0; j < tb.size(); ++j) {
    if (!used_b[j]) weight_total += static_cast<double>(tb[j].size());
  }
  return weight_total == 0.0 ? 1.0 : weighted_sum / weight_total;
}

}  // namespace skyex::text::reference
