#ifndef SKYEX_TEXT_TFIDF_H_
#define SKYEX_TEXT_TFIDF_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace skyex::text {

/// Corpus term statistics for IDF-weighted token similarities — the
/// SoftTFIDF family of Moreau et al. that the paper's related work
/// discusses for named-entity matching. Terms that occur in many records
/// ("cafe", "restaurant") get low weight; distinctive terms dominate.
class TfIdfWeights {
 public:
  TfIdfWeights() = default;

  /// Builds document frequencies from a corpus of (normalized) strings;
  /// each string is one document.
  static TfIdfWeights Build(const std::vector<std::string>& corpus);

  /// ln(1 + N / (1 + df(term))) — smooth IDF; unseen terms get the
  /// maximum weight.
  double Idf(std::string_view term) const;

  size_t corpus_size() const { return corpus_size_; }

 private:
  std::unordered_map<std::string, size_t> document_frequency_;
  size_t corpus_size_ = 0;
};

/// TF-IDF cosine similarity of the two strings' token vectors.
double TfIdfCosine(const TfIdfWeights& weights, std::string_view a,
                   std::string_view b);

/// SoftTFIDF (Cohen/Moreau): like TF-IDF cosine, but tokens count as
/// matching when their Jaro-Winkler similarity reaches `threshold`, with
/// the match discounted by that similarity.
double SoftTfIdf(const TfIdfWeights& weights, std::string_view a,
                 std::string_view b, double threshold = 0.9);

}  // namespace skyex::text

#endif  // SKYEX_TEXT_TFIDF_H_
