#ifndef SKYEX_TEXT_EDIT_DISTANCE_H_
#define SKYEX_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace skyex::text {

/// Classic Levenshtein edit distance (insert / delete / substitute).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Damerau-Levenshtein distance in the common "optimal string alignment"
/// variant: adds transposition of adjacent characters, with the restriction
/// that no substring is edited more than once.
size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b);

/// Length of the longest common subsequence.
size_t LongestCommonSubsequence(std::string_view a, std::string_view b);

/// 1 - distance / max(|a|, |b|), in [0, 1]. Two empty strings → 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Normalized Damerau-Levenshtein similarity, same convention as above.
double DamerauLevenshteinSimilarity(std::string_view a, std::string_view b);

/// LCS-based similarity: 2·LCS / (|a| + |b|).
double LcsSimilarity(std::string_view a, std::string_view b);

}  // namespace skyex::text

#endif  // SKYEX_TEXT_EDIT_DISTANCE_H_
