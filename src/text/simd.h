#ifndef SKYEX_TEXT_SIMD_H_
#define SKYEX_TEXT_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

// Runtime SIMD dispatch for the string-similarity kernels.
//
// The level is detected once from CPUID at first use, can be capped by the
// SKYEX_SIMD environment variable ("scalar", "sse2", "avx2" — checked at
// detection time), and can be overridden programmatically with SetSimdLevel
// (used by the kernel-equivalence tests to exercise every code path on one
// host). Requesting a level above what the CPU supports clamps down, so
// SetSimdLevel(kAvx2) on an SSE2-only host silently runs the SSE2 path.
//
// Every vector routine here has a scalar twin with identical observable
// behaviour; the property tests in tests/kernel_equiv_test.cc pin them
// bit-identical against the frozen reference kernels at every level.

namespace skyex::text {

enum class SimdLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// The level vector kernels currently dispatch to.
SimdLevel ActiveSimdLevel();

/// Highest level the CPU supports (ignores env/override caps).
SimdLevel DetectedSimdLevel();

/// Overrides the active level (clamped to DetectedSimdLevel()). Not
/// thread-safe against concurrent kernel execution; intended for tests and
/// startup configuration.
void SetSimdLevel(SimdLevel level);

/// Human-readable level name ("scalar" / "sse2" / "avx2").
const char* SimdLevelName(SimdLevel level);

/// Returns the smallest index j in [lo, hi) with text[j] == needle and
/// flags[j] == 0, or `hi` when there is none. This is the inner scan of the
/// Jaro match loop (first unmatched occurrence inside the match window).
size_t FindUnmatchedChar(const char* text, const uint8_t* flags, size_t lo,
                         size_t hi, char needle);

}  // namespace skyex::text

#endif  // SKYEX_TEXT_SIMD_H_
