#ifndef SKYEX_TEXT_JARO_H_
#define SKYEX_TEXT_JARO_H_

#include <string_view>

namespace skyex::text {

/// Jaro similarity in [0, 1]. Two empty strings → 1.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity with the standard prefix scale 0.1 and prefix
/// length cap 4. `prefix_scale` can be overridden (the "tuned" variant of
/// Santos et al. uses a different scale).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1,
                             double boost_threshold = 0.7);

/// Jaro-Winkler computed on the reversed strings — rewards common suffixes
/// instead of common prefixes.
double ReversedJaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler after alphanumeric token sorting of both strings.
double SortedJaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Maximum Jaro-Winkler over the token permutations of `a` (capped at
/// `max_tokens` tokens; beyond the cap it falls back to the sorted
/// variant, like the reference implementation of Santos et al.).
double PermutedJaroWinklerSimilarity(std::string_view a, std::string_view b,
                                     size_t max_tokens = 6);

/// The "tuned" Jaro-Winkler of Santos et al.: a larger prefix weight and no
/// boost threshold, favouring toponyms that share word beginnings.
double TunedJaroWinklerSimilarity(std::string_view a, std::string_view b);

}  // namespace skyex::text

#endif  // SKYEX_TEXT_JARO_H_
