#include "text/normalize.h"

#include <cctype>
#include <cstdint>

namespace skyex::text {

namespace {

// Returns the ASCII replacement for a Unicode code point, or nullptr when
// the code point has no mapping (it is then dropped).
const char* AsciiFold(uint32_t cp) {
  switch (cp) {
    case 0x00C0: case 0x00C1: case 0x00C2: case 0x00C3: case 0x00C4:
    case 0x00E0: case 0x00E1: case 0x00E2: case 0x00E3: case 0x00E4:
    case 0x0100: case 0x0101: case 0x0102: case 0x0103: case 0x0104:
    case 0x0105:
      return "a";
    case 0x00C5: case 0x00E5:
      return "aa";  // Danish å
    case 0x00C6: case 0x00E6:
      return "ae";  // Danish æ
    case 0x00C7: case 0x00E7: case 0x0106: case 0x0107: case 0x010C:
    case 0x010D:
      return "c";
    case 0x010E: case 0x010F: case 0x0110: case 0x0111:
      return "d";
    case 0x00C8: case 0x00C9: case 0x00CA: case 0x00CB:
    case 0x00E8: case 0x00E9: case 0x00EA: case 0x00EB:
    case 0x0112: case 0x0113: case 0x0118: case 0x0119: case 0x011A:
    case 0x011B:
      return "e";
    case 0x011E: case 0x011F:
      return "g";
    case 0x00CC: case 0x00CD: case 0x00CE: case 0x00CF:
    case 0x00EC: case 0x00ED: case 0x00EE: case 0x00EF:
    case 0x012A: case 0x012B: case 0x0130: case 0x0131:
      return "i";
    case 0x0141: case 0x0142:
      return "l";
    case 0x00D1: case 0x00F1: case 0x0143: case 0x0144: case 0x0147:
    case 0x0148:
      return "n";
    case 0x00D2: case 0x00D3: case 0x00D4: case 0x00D5: case 0x00D6:
    case 0x00F2: case 0x00F3: case 0x00F4: case 0x00F5: case 0x00F6:
    case 0x014C: case 0x014D: case 0x0150: case 0x0151:
      return "o";
    case 0x00D8: case 0x00F8:
      return "oe";  // Danish ø
    case 0x0154: case 0x0155: case 0x0158: case 0x0159:
      return "r";
    case 0x015A: case 0x015B: case 0x015E: case 0x015F: case 0x0160:
    case 0x0161:
      return "s";
    case 0x00DF:
      return "ss";  // German ß
    case 0x0162: case 0x0163: case 0x0164: case 0x0165:
      return "t";
    case 0x00D9: case 0x00DA: case 0x00DB: case 0x00DC:
    case 0x00F9: case 0x00FA: case 0x00FB: case 0x00FC:
    case 0x016A: case 0x016B: case 0x016E: case 0x016F: case 0x0170:
    case 0x0171:
      return "u";
    case 0x00DD: case 0x00FD: case 0x00FF: case 0x0178:
      return "y";
    case 0x0179: case 0x017A: case 0x017B: case 0x017C: case 0x017D:
    case 0x017E:
      return "z";
    case 0x00D0: case 0x00F0:
      return "d";  // Icelandic ð
    case 0x00DE: case 0x00FE:
      return "th";  // Icelandic þ
    default:
      return nullptr;
  }
}

// Decodes one UTF-8 code point starting at input[i]; advances i past it.
// Malformed bytes are consumed one at a time and returned as-is.
uint32_t DecodeUtf8(std::string_view input, size_t& i) {
  const auto byte = [&](size_t k) -> uint32_t {
    return static_cast<unsigned char>(input[k]);
  };
  uint32_t b0 = byte(i);
  if (b0 < 0x80) {
    ++i;
    return b0;
  }
  if ((b0 & 0xE0) == 0xC0 && i + 1 < input.size()) {
    uint32_t cp = ((b0 & 0x1F) << 6) | (byte(i + 1) & 0x3F);
    i += 2;
    return cp;
  }
  if ((b0 & 0xF0) == 0xE0 && i + 2 < input.size()) {
    uint32_t cp = ((b0 & 0x0F) << 12) | ((byte(i + 1) & 0x3F) << 6) |
                  (byte(i + 2) & 0x3F);
    i += 3;
    return cp;
  }
  if ((b0 & 0xF8) == 0xF0 && i + 3 < input.size()) {
    uint32_t cp = ((b0 & 0x07) << 18) | ((byte(i + 1) & 0x3F) << 12) |
                  ((byte(i + 2) & 0x3F) << 6) | (byte(i + 3) & 0x3F);
    i += 4;
    return cp;
  }
  ++i;
  return b0;
}

}  // namespace

std::string FoldAccents(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  size_t i = 0;
  while (i < input.size()) {
    uint32_t cp = DecodeUtf8(input, i);
    if (cp < 0x80) {
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(cp))));
    } else if (const char* rep = AsciiFold(cp)) {
      out += rep;
    }
    // Unmapped non-ASCII code points are dropped.
  }
  return out;
}

std::string StripPunctuation(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (char c : input) {
    unsigned char uc = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(uc) ? c : ' ');
  }
  return out;
}

std::string CollapseWhitespace(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  bool in_space = true;  // true so leading spaces are trimmed
  for (char c : input) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string Normalize(std::string_view input) {
  return CollapseWhitespace(StripPunctuation(FoldAccents(input)));
}

}  // namespace skyex::text
