#ifndef SKYEX_TEXT_SIMILARITY_REGISTRY_H_
#define SKYEX_TEXT_SIMILARITY_REGISTRY_H_

#include <string_view>
#include <vector>

namespace skyex::text {

/// A string similarity function: two strings → score in [0, 1].
using SimilarityFn = double (*)(std::string_view, std::string_view);

/// A named similarity measure, used to build the LGM-X feature schema.
struct NamedSimilarity {
  std::string_view name;
  SimilarityFn fn;
};

/// The 14 "basic similarity" measures of the LGM-X feature group (i):
/// the 13 measures studied by Santos et al. for toponym matching plus the
/// plain Levenshtein similarity.
const std::vector<NamedSimilarity>& BasicSimilarities();

/// The 13 measures that get a token-sorted variant (feature group (ii))
/// and an LGM-Sim-based variant (group (iii)). SortedJaroWinkler is
/// excluded — its input is already sorted.
const std::vector<NamedSimilarity>& SortableSimilarities();

/// Looks up a basic measure by name; returns nullptr when unknown.
SimilarityFn FindSimilarity(std::string_view name);

/// Which kernel implementations the registry hands out. kOptimized is the
/// default (branch-light / scratch-arena / SIMD-dispatched); kReference is
/// the frozen pre-optimization scalar set (text/reference.h), used by the
/// equivalence tests and as the honest "before" leg of bench_snapshot.sh
/// --extract. The two produce bit-identical scores; only speed differs.
enum class KernelImpl : int {
  kOptimized = 0,
  kReference = 1,
};

/// Switches the registry between implementations. Intended for startup /
/// tests; not synchronized against concurrent extraction. Also settable via
/// the SKYEX_TEXT_KERNELS environment variable ("reference") before first
/// use.
void SetKernelImpl(KernelImpl impl);
KernelImpl ActiveKernelImpl();

}  // namespace skyex::text

#endif  // SKYEX_TEXT_SIMILARITY_REGISTRY_H_
