#include "geo/quadtree.h"

#include <algorithm>
#include <limits>

#include "geo/distance.h"

namespace skyex::geo {

Quadtree::Quadtree(const std::vector<GeoPoint>& points, const Options& options)
    : points_(points), options_(options) {
  root_ = std::make_unique<Node>();
  // Compute the bounding box of the valid points.
  BoundingBox box{std::numeric_limits<double>::max(),
                  std::numeric_limits<double>::max(),
                  std::numeric_limits<double>::lowest(),
                  std::numeric_limits<double>::lowest()};
  bool any = false;
  for (const GeoPoint& p : points_) {
    if (!p.valid) continue;
    box = Extend(box, p);
    any = true;
  }
  if (!any) box = BoundingBox{0, 0, 0, 0};
  root_->box = box;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (!points_[i].valid) continue;
    Insert(root_.get(), i);
    ++num_points_;
  }
}

void Quadtree::Split(Node* node) {
  const double mid_lat = node->box.CenterLat();
  const double mid_lon = node->box.CenterLon();
  const BoundingBox quads[4] = {
      {node->box.min_lat, node->box.min_lon, mid_lat, mid_lon},
      {node->box.min_lat, mid_lon, mid_lat, node->box.max_lon},
      {mid_lat, node->box.min_lon, node->box.max_lat, mid_lon},
      {mid_lat, mid_lon, node->box.max_lat, node->box.max_lon},
  };
  for (int q = 0; q < 4; ++q) {
    node->children[q] = std::make_unique<Node>();
    node->children[q]->box = quads[q];
    node->children[q]->depth = node->depth + 1;
  }
  std::vector<size_t> indices = std::move(node->indices);
  node->indices.clear();
  for (size_t index : indices) Insert(node, index);
}

void Quadtree::Insert(Node* node, size_t index) {
  while (!node->IsLeaf()) {
    const GeoPoint& p = points_[index];
    const double mid_lat = node->box.CenterLat();
    const double mid_lon = node->box.CenterLon();
    const int quad = (p.lat >= mid_lat ? 2 : 0) + (p.lon >= mid_lon ? 1 : 0);
    node = node->children[quad].get();
  }
  node->indices.push_back(index);
  if (node->indices.size() > options_.capacity &&
      node->depth < options_.max_depth) {
    Split(node);
  }
}

std::vector<size_t> Quadtree::Query(const BoundingBox& box) const {
  std::vector<size_t> out;
  QueryNode(root_.get(), box, &out);
  return out;
}

void Quadtree::QueryNode(const Node* node, const BoundingBox& box,
                         std::vector<size_t>* out) const {
  if (node == nullptr) return;
#if !defined(SKYEX_OBS_DISABLED)
  ++query_nodes_visited_;
#endif
  // Reject nodes that do not intersect the query box.
  if (node->box.max_lat < box.min_lat || node->box.min_lat > box.max_lat ||
      node->box.max_lon < box.min_lon || node->box.min_lon > box.max_lon) {
    return;
  }
  if (node->IsLeaf()) {
    for (size_t index : node->indices) {
      if (box.Contains(points_[index])) out->push_back(index);
    }
    return;
  }
  for (const auto& child : node->children) {
    QueryNode(child.get(), box, out);
  }
}

size_t Quadtree::CountLeaves(const Node* node) {
  if (node == nullptr) return 0;
  if (node->IsLeaf()) return 1;
  size_t count = 0;
  for (const auto& child : node->children) count += CountLeaves(child.get());
  return count;
}

int Quadtree::RouteLeafOrdinal(const GeoPoint& p) const {
  if (!p.valid) return -1;
  const Node* node = root_.get();
  size_t ordinal = 0;
  while (!node->IsLeaf()) {
    const double mid_lat = node->box.CenterLat();
    const double mid_lon = node->box.CenterLon();
    // Same routing rule as Insert: >= goes to the upper/right child.
    const int quad = (p.lat >= mid_lat ? 2 : 0) + (p.lon >= mid_lon ? 1 : 0);
    for (int q = 0; q < quad; ++q) {
      ordinal += CountLeaves(node->children[q].get());
    }
    node = node->children[quad].get();
  }
  return static_cast<int>(ordinal);
}

void Quadtree::CollectIntersecting(const Node* node, const GeoPoint& center,
                                   double radius_m, size_t* ordinal,
                                   std::vector<size_t>* out) const {
  if (node->IsLeaf()) {
    if (CircleIntersectsBox(center, radius_m, node->box)) {
      out->push_back(*ordinal);
    }
    ++*ordinal;
    return;
  }
  if (!CircleIntersectsBox(center, radius_m, node->box)) {
    // Children tile this box, so none of them can intersect either.
    *ordinal += CountLeaves(node);
    return;
  }
  for (const auto& child : node->children) {
    CollectIntersecting(child.get(), center, radius_m, ordinal, out);
  }
}

std::vector<size_t> Quadtree::LeafOrdinalsIntersecting(
    const GeoPoint& center, double radius_m) const {
  std::vector<size_t> out;
  if (!center.valid) return out;
  size_t ordinal = 0;
  CollectIntersecting(root_.get(), center, radius_m, &ordinal, &out);
  return out;
}

size_t Quadtree::num_leaves() const {
  size_t count = 0;
  VisitLeaves(root_.get(), [&count](const std::vector<size_t>&,
                                    const BoundingBox&, size_t) { ++count; });
  return count;
}

}  // namespace skyex::geo
