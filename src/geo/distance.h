#ifndef SKYEX_GEO_DISTANCE_H_
#define SKYEX_GEO_DISTANCE_H_

#include "geo/point.h"

namespace skyex::geo {

inline constexpr double kEarthRadiusMeters = 6371000.0;

/// Great-circle distance in meters (haversine formula). Either point
/// invalid → returns a negative sentinel (-1).
double HaversineMeters(const GeoPoint& a, const GeoPoint& b);

/// Fast equirectangular approximation of the distance in meters; accurate
/// to well under 1% for the sub-kilometer distances blocking works with.
double EquirectangularMeters(const GeoPoint& a, const GeoPoint& b);

/// Converts a distance in meters at the given latitude to approximate
/// degree deltas (used by the quadtree to translate radii to cell sizes).
double MetersToLatDegrees(double meters);
double MetersToLonDegrees(double meters, double at_lat);

/// Conservative test: true whenever some point of `box` lies within
/// `radius_m` of `center` under EquirectangularMeters — may also return
/// true for boxes slightly outside the radius (the box is inflated by
/// the radius in degrees at the least favorable latitude), never false
/// for a box that actually contains an in-radius point. The shard router
/// uses this to decide which quadtree cells a candidate scan can touch;
/// conservatism means a pruned cell provably holds no candidate.
/// An invalid center intersects nothing (returns false).
bool CircleIntersectsBox(const GeoPoint& center, double radius_m,
                         const BoundingBox& box);

}  // namespace skyex::geo

#endif  // SKYEX_GEO_DISTANCE_H_
