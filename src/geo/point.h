#ifndef SKYEX_GEO_POINT_H_
#define SKYEX_GEO_POINT_H_

namespace skyex::geo {

/// A geographic point in degrees. Latitude in [-90, 90], longitude in
/// [-180, 180]. A point can be marked invalid (missing coordinates) —
/// the Restaurants dataset of the paper has no coordinates at all.
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;
  bool valid = true;

  static GeoPoint Invalid() { return GeoPoint{0.0, 0.0, false}; }
};

bool operator==(const GeoPoint& a, const GeoPoint& b);

/// An axis-aligned bounding box in degrees.
struct BoundingBox {
  double min_lat = 0.0;
  double min_lon = 0.0;
  double max_lat = 0.0;
  double max_lon = 0.0;

  bool Contains(const GeoPoint& p) const {
    return p.valid && p.lat >= min_lat && p.lat <= max_lat &&
           p.lon >= min_lon && p.lon <= max_lon;
  }

  double CenterLat() const { return 0.5 * (min_lat + max_lat); }
  double CenterLon() const { return 0.5 * (min_lon + max_lon); }
};

/// Smallest box containing both points of a span of points; returns a
/// zero-area box at the origin for an empty span.
BoundingBox Extend(const BoundingBox& box, const GeoPoint& p);

}  // namespace skyex::geo

#endif  // SKYEX_GEO_POINT_H_
