#include "geo/geohash.h"

#include <algorithm>
#include <cmath>

#include "geo/distance.h"

namespace skyex::geo {

namespace {

constexpr std::string_view kBase32 = "0123456789bcdefghjkmnpqrstuvwxyz";

int Base32Value(char c) {
  const size_t pos = kBase32.find(c);
  return pos == std::string_view::npos ? -1 : static_cast<int>(pos);
}

}  // namespace

std::string GeohashEncode(const GeoPoint& point, size_t precision) {
  if (!point.valid || precision == 0) return "";
  precision = std::min<size_t>(precision, 12);
  double lat_lo = -90.0;
  double lat_hi = 90.0;
  double lon_lo = -180.0;
  double lon_hi = 180.0;
  std::string hash;
  int bit = 0;
  int value = 0;
  bool even_bit = true;  // even bits encode longitude
  while (hash.size() < precision) {
    if (even_bit) {
      const double mid = 0.5 * (lon_lo + lon_hi);
      if (point.lon >= mid) {
        value = (value << 1) | 1;
        lon_lo = mid;
      } else {
        value <<= 1;
        lon_hi = mid;
      }
    } else {
      const double mid = 0.5 * (lat_lo + lat_hi);
      if (point.lat >= mid) {
        value = (value << 1) | 1;
        lat_lo = mid;
      } else {
        value <<= 1;
        lat_hi = mid;
      }
    }
    even_bit = !even_bit;
    if (++bit == 5) {
      hash.push_back(kBase32[static_cast<size_t>(value)]);
      bit = 0;
      value = 0;
    }
  }
  return hash;
}

BoundingBox GeohashBounds(std::string_view hash) {
  BoundingBox box{-90.0, -180.0, 90.0, 180.0};
  bool even_bit = true;
  for (char c : hash) {
    const int value = Base32Value(c);
    if (value < 0) return BoundingBox{0, 0, 0, 0};
    for (int b = 4; b >= 0; --b) {
      const int bit = (value >> b) & 1;
      if (even_bit) {
        const double mid = 0.5 * (box.min_lon + box.max_lon);
        if (bit) box.min_lon = mid;
        else box.max_lon = mid;
      } else {
        const double mid = 0.5 * (box.min_lat + box.max_lat);
        if (bit) box.min_lat = mid;
        else box.max_lat = mid;
      }
      even_bit = !even_bit;
    }
  }
  return box;
}

GeoPoint GeohashDecode(std::string_view hash) {
  if (hash.empty()) return GeoPoint::Invalid();
  const BoundingBox box = GeohashBounds(hash);
  if (box.min_lat == box.max_lat && box.min_lon == box.max_lon) {
    return GeoPoint::Invalid();
  }
  return GeoPoint{box.CenterLat(), box.CenterLon(), true};
}

std::vector<std::string> GeohashNeighbors(std::string_view hash) {
  const BoundingBox box = GeohashBounds(hash);
  const double dlat = box.max_lat - box.min_lat;
  const double dlon = box.max_lon - box.min_lon;
  const double lat = box.CenterLat();
  const double lon = box.CenterLon();
  std::vector<std::string> neighbors;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const double nlat = lat + dy * dlat;
      double nlon = lon + dx * dlon;
      if (nlat < -90.0 || nlat > 90.0) continue;
      if (nlon < -180.0) nlon += 360.0;
      if (nlon > 180.0) nlon -= 360.0;
      std::string n =
          GeohashEncode(GeoPoint{nlat, nlon, true}, hash.size());
      if (n != hash &&
          std::find(neighbors.begin(), neighbors.end(), n) ==
              neighbors.end()) {
        neighbors.push_back(std::move(n));
      }
    }
  }
  return neighbors;
}

std::pair<double, double> GeohashCellSizeMeters(size_t precision,
                                                double at_lat) {
  precision = std::min<size_t>(std::max<size_t>(precision, 1), 12);
  const int bits = static_cast<int>(precision) * 5;
  const int lon_bits = (bits + 1) / 2;
  const int lat_bits = bits / 2;
  const double lon_deg = 360.0 / std::pow(2.0, lon_bits);
  const double lat_deg = 180.0 / std::pow(2.0, lat_bits);
  const double meters_per_lat_deg = kEarthRadiusMeters * std::numbers::pi / 180.0;
  const double width =
      lon_deg * meters_per_lat_deg * std::cos(at_lat * std::numbers::pi / 180.0);
  const double height = lat_deg * meters_per_lat_deg;
  return {width, height};
}

}  // namespace skyex::geo
