#ifndef SKYEX_GEO_QUADTREE_H_
#define SKYEX_GEO_QUADTREE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "geo/point.h"

namespace skyex::geo {

/// A point-region quadtree over geographic points. Leaves split when they
/// exceed `capacity` points, down to `max_depth`. Points are stored as
/// indices into the vector supplied at construction, so the tree never
/// copies coordinates.
class Quadtree {
 public:
  struct Options {
    size_t capacity = 64;
    size_t max_depth = 16;
  };

  Quadtree(const std::vector<GeoPoint>& points, const Options& options);

  Quadtree(const Quadtree&) = delete;
  Quadtree& operator=(const Quadtree&) = delete;

  /// Returns indices of all points within the box.
  std::vector<size_t> Query(const BoundingBox& box) const;

  /// Invokes `fn(leaf_indices, leaf_box, depth)` for every leaf node.
  template <typename Fn>
  void ForEachLeaf(Fn&& fn) const {
    VisitLeaves(root_.get(), fn);
  }

  size_t num_points() const { return num_points_; }
  size_t num_leaves() const;

  /// Ordinal — in ForEachLeaf (DFS) order — of the leaf the insert
  /// routing would place `p` in. Edge cases follow Insert exactly: a
  /// point on a split boundary routes to the >=-side child, and points
  /// outside the root box route to a border leaf. -1 for an invalid
  /// point. The shard map (src/shard/) derives cell ownership here, so
  /// a record and the queries near it agree on the owning cell.
  int RouteLeafOrdinal(const GeoPoint& p) const;

  /// Ordinals (ascending) of every leaf whose cell could hold a point
  /// within `radius_m` of `center` — conservative, via
  /// geo::CircleIntersectsBox, so a leaf NOT listed provably holds no
  /// such point. Empty for an invalid center.
  std::vector<size_t> LeafOrdinalsIntersecting(const GeoPoint& center,
                                               double radius_m) const;

  /// Nodes touched by Query() calls since construction (root included,
  /// pruned subtrees excluded). Plain counter: concurrent Query() calls
  /// undercount, which is acceptable for telemetry.
  uint64_t query_nodes_visited() const { return query_nodes_visited_; }

 private:
  struct Node {
    BoundingBox box;
    size_t depth = 0;
    std::vector<size_t> indices;                 // populated in leaves only
    std::unique_ptr<Node> children[4];           // null in leaves
    bool IsLeaf() const { return children[0] == nullptr; }
  };

  void Split(Node* node);
  void Insert(Node* node, size_t index);
  void QueryNode(const Node* node, const BoundingBox& box,
                 std::vector<size_t>* out) const;
  static size_t CountLeaves(const Node* node);
  void CollectIntersecting(const Node* node, const GeoPoint& center,
                           double radius_m, size_t* ordinal,
                           std::vector<size_t>* out) const;

  template <typename Fn>
  void VisitLeaves(const Node* node, Fn&& fn) const {
    if (node == nullptr) return;
    if (node->IsLeaf()) {
      fn(node->indices, node->box, node->depth);
      return;
    }
    for (const auto& child : node->children) {
      VisitLeaves(child.get(), fn);
    }
  }

  const std::vector<GeoPoint>& points_;
  Options options_;
  std::unique_ptr<Node> root_;
  size_t num_points_ = 0;
  mutable uint64_t query_nodes_visited_ = 0;
};

}  // namespace skyex::geo

#endif  // SKYEX_GEO_QUADTREE_H_
