#include "geo/quadflex.h"

#include <algorithm>
#include <cmath>

#include "geo/distance.h"
#include "geo/quadtree.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace skyex::geo {

namespace {

// The density-adaptive pairing radius of a leaf: the leaf's half-diagonal,
// clamped to [min_radius, max_radius]. Small (dense) leaves get small
// radii; large (sparse) leaves get large ones.
double LeafRadiusMeters(const BoundingBox& box, const QuadFlexOptions& opt) {
  const GeoPoint a{box.min_lat, box.min_lon, true};
  const GeoPoint b{box.max_lat, box.max_lon, true};
  const double diag = EquirectangularMeters(a, b);
  return std::clamp(diag / 2.0, opt.min_radius_m, opt.max_radius_m);
}

}  // namespace

std::vector<CandidatePair> QuadFlexBlock(const std::vector<GeoPoint>& points,
                                         const QuadFlexOptions& options) {
  SKYEX_SPAN("blocking/quadflex");
  Quadtree::Options tree_options;
  tree_options.capacity = options.leaf_capacity;
  tree_options.max_depth = options.max_depth;
  Quadtree tree(points, tree_options);

  std::vector<CandidatePair> pairs;
  tree.ForEachLeaf([&](const std::vector<size_t>& indices,
                       const BoundingBox& box, size_t /*depth*/) {
    if (indices.empty()) return;
    const double radius = LeafRadiusMeters(box, options);

    // Within-leaf pairs.
    for (size_t x = 0; x < indices.size(); ++x) {
      for (size_t y = x + 1; y < indices.size(); ++y) {
        const size_t i = indices[x];
        const size_t j = indices[y];
        const double d = EquirectangularMeters(points[i], points[j]);
        if (d >= 0.0 && d <= radius) {
          pairs.emplace_back(std::min(i, j), std::max(i, j));
        }
      }
    }

    if (!options.compare_neighbor_leaves) return;

    // Pairs across the leaf boundary: query a ring of width `radius`
    // around the leaf box and pair leaf points with outside points.
    const double dlat = MetersToLatDegrees(radius);
    const double dlon = MetersToLonDegrees(radius, box.CenterLat());
    const BoundingBox ring{box.min_lat - dlat, box.min_lon - dlon,
                           box.max_lat + dlat, box.max_lon + dlon};
    const std::vector<size_t> nearby = tree.Query(ring);
    for (size_t i : indices) {
      for (size_t j : nearby) {
        if (box.Contains(points[j])) continue;  // handled by j's own leaf
        const double d = EquirectangularMeters(points[i], points[j]);
        if (d >= 0.0 && d <= radius) {
          pairs.emplace_back(std::min(i, j), std::max(i, j));
        }
      }
    }
  });

  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  SKYEX_COUNTER_ADD("geo/quadtree_node_visits", tree.query_nodes_visited());
  SKYEX_COUNTER_ADD("geo/quadflex_leaves", tree.num_leaves());
  SKYEX_COUNTER_ADD("blocking/candidate_pairs", pairs.size());
  return pairs;
}

std::vector<CandidatePair> CartesianBlock(size_t n) {
  SKYEX_SPAN("blocking/cartesian");
  std::vector<CandidatePair> pairs;
  if (n < 2) return pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      pairs.emplace_back(i, j);
    }
  }
  SKYEX_COUNTER_ADD("blocking/candidate_pairs", pairs.size());
  return pairs;
}

}  // namespace skyex::geo
