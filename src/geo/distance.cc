#include "geo/distance.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace skyex::geo {

namespace {

constexpr double kDegToRad = std::numbers::pi / 180.0;

}  // namespace

double HaversineMeters(const GeoPoint& a, const GeoPoint& b) {
  if (!a.valid || !b.valid) return -1.0;
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

double EquirectangularMeters(const GeoPoint& a, const GeoPoint& b) {
  if (!a.valid || !b.valid) return -1.0;
  const double mean_lat = 0.5 * (a.lat + b.lat) * kDegToRad;
  const double x = (b.lon - a.lon) * kDegToRad * std::cos(mean_lat);
  const double y = (b.lat - a.lat) * kDegToRad;
  return kEarthRadiusMeters * std::sqrt(x * x + y * y);
}

double MetersToLatDegrees(double meters) {
  return meters / (kEarthRadiusMeters * kDegToRad);
}

double MetersToLonDegrees(double meters, double at_lat) {
  const double scale = std::cos(at_lat * kDegToRad);
  if (scale <= 1e-9) return 360.0;
  return meters / (kEarthRadiusMeters * kDegToRad * scale);
}

}  // namespace skyex::geo
