#include "geo/distance.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace skyex::geo {

namespace {

constexpr double kDegToRad = std::numbers::pi / 180.0;

}  // namespace

double HaversineMeters(const GeoPoint& a, const GeoPoint& b) {
  if (!a.valid || !b.valid) return -1.0;
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

double EquirectangularMeters(const GeoPoint& a, const GeoPoint& b) {
  if (!a.valid || !b.valid) return -1.0;
  const double mean_lat = 0.5 * (a.lat + b.lat) * kDegToRad;
  const double x = (b.lon - a.lon) * kDegToRad * std::cos(mean_lat);
  const double y = (b.lat - a.lat) * kDegToRad;
  return kEarthRadiusMeters * std::sqrt(x * x + y * y);
}

double MetersToLatDegrees(double meters) {
  return meters / (kEarthRadiusMeters * kDegToRad);
}

double MetersToLonDegrees(double meters, double at_lat) {
  const double scale = std::cos(at_lat * kDegToRad);
  if (scale <= 1e-9) return 360.0;
  return meters / (kEarthRadiusMeters * kDegToRad * scale);
}

bool CircleIntersectsBox(const GeoPoint& center, double radius_m,
                         const BoundingBox& box) {
  if (!center.valid) return false;
  if (radius_m < 0.0) radius_m = 0.0;
  // Inflate the box by the radius in degrees. Latitude converts
  // uniformly. Longitude uses the largest |lat| the comparison can see
  // (the center's or either box edge's): EquirectangularMeters scales
  // dlon by cos(mean_lat), and |mean| <= max(|center.lat|, |q.lat|) for
  // any q in the box, so cos(mean) >= cos(at) and the true degree reach
  // of the radius never exceeds MetersToLonDegrees(radius, at).
  const double dlat = MetersToLatDegrees(radius_m);
  const double at = std::max(
      {std::fabs(center.lat), std::fabs(box.min_lat), std::fabs(box.max_lat)});
  const double dlon = MetersToLonDegrees(radius_m, std::min(at, 89.9));
  constexpr double kSlackDeg = 1e-9;  // absorbs the degree conversions' FP
  return center.lat >= box.min_lat - dlat - kSlackDeg &&
         center.lat <= box.max_lat + dlat + kSlackDeg &&
         center.lon >= box.min_lon - dlon - kSlackDeg &&
         center.lon <= box.max_lon + dlon + kSlackDeg;
}

}  // namespace skyex::geo
