#ifndef SKYEX_GEO_QUADFLEX_H_
#define SKYEX_GEO_QUADFLEX_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "geo/point.h"

namespace skyex::geo {

/// Configuration for the QuadFlex spatial blocker of Isaj et al.
///
/// QuadFlex groups spatial entities with a quadtree whose pairing radius
/// adapts to the local density: in dense areas (deep, small leaves) only
/// very close entities are paired, while in sparse areas the radius grows
/// up to `max_radius_m`. This mirrors the paper's motivating example of a
/// small radius in the city center and a large one in the countryside.
struct QuadFlexOptions {
  /// A leaf splits while it holds more than this many points.
  size_t leaf_capacity = 128;
  /// Maximum quadtree depth.
  size_t max_depth = 20;
  /// Pairing radius ceiling (sparse areas).
  double max_radius_m = 200.0;
  /// Pairing radius floor (dense areas).
  double min_radius_m = 25.0;
  /// Also compare points whose leaves are adjacent, removing the boundary
  /// losses of pure within-leaf comparison at some extra cost.
  bool compare_neighbor_leaves = true;
};

/// A candidate pair of entity indices produced by blocking, i < j.
using CandidatePair = std::pair<size_t, size_t>;

/// Runs QuadFlex blocking over `points` and returns the candidate pairs
/// (indices into `points`, first < second, de-duplicated). Invalid points
/// (missing coordinates) never pair.
std::vector<CandidatePair> QuadFlexBlock(const std::vector<GeoPoint>& points,
                                         const QuadFlexOptions& options = {});

/// All-pairs Cartesian blocking (used for datasets without coordinates,
/// like the Restaurants dataset). Returns n·(n-1)/2 pairs.
std::vector<CandidatePair> CartesianBlock(size_t n);

}  // namespace skyex::geo

#endif  // SKYEX_GEO_QUADFLEX_H_
