#ifndef SKYEX_GEO_GEOHASH_H_
#define SKYEX_GEO_GEOHASH_H_

#include <string>
#include <string_view>
#include <vector>

#include "geo/point.h"

namespace skyex::geo {

/// Standard base-32 geohash of a point; precision = number of characters
/// (12 max). Invalid points yield "".
std::string GeohashEncode(const GeoPoint& point, size_t precision);

/// Center of a geohash cell; invalid input yields an invalid point.
GeoPoint GeohashDecode(std::string_view hash);

/// The bounding box of a geohash cell.
BoundingBox GeohashBounds(std::string_view hash);

/// The 8 neighboring cells (same precision), in no particular order.
/// Cells at the poles/antimeridian may be fewer.
std::vector<std::string> GeohashNeighbors(std::string_view hash);

/// Approximate cell dimensions in meters for a given precision at a
/// given latitude (width, height).
std::pair<double, double> GeohashCellSizeMeters(size_t precision,
                                                double at_lat);

}  // namespace skyex::geo

#endif  // SKYEX_GEO_GEOHASH_H_
