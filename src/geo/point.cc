#include "geo/point.h"

#include <algorithm>

namespace skyex::geo {

bool operator==(const GeoPoint& a, const GeoPoint& b) {
  if (!a.valid || !b.valid) return a.valid == b.valid;
  return a.lat == b.lat && a.lon == b.lon;
}

BoundingBox Extend(const BoundingBox& box, const GeoPoint& p) {
  BoundingBox out = box;
  out.min_lat = std::min(out.min_lat, p.lat);
  out.max_lat = std::max(out.max_lat, p.lat);
  out.min_lon = std::min(out.min_lon, p.lon);
  out.max_lon = std::max(out.max_lon, p.lon);
  return out;
}

}  // namespace skyex::geo
