#include "quality/profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "ml/statistics.h"
#include "quality/audit_log.h"

namespace skyex::quality {

namespace {

constexpr size_t kFeatureBins = 16;
constexpr size_t kScoreBins = 32;
constexpr size_t kEntityBins = 24;
constexpr double kPsiEpsilon = 1e-6;

/// Data-derived bounds, padded so near-boundary live values do not all
/// pile into the edge bins; degenerate (constant) data gets a ±0.5 pad.
void InitFromRange(ProfileHistogram* hist, ml::ValueRange range,
                   size_t bins) {
  if (!range.ok) {
    hist->Init(0.0, 1.0, bins);
    return;
  }
  double pad = (range.max - range.min) * 0.05;
  if (pad <= 0.0) pad = 0.5;
  hist->Init(range.min - pad, range.max + pad, bins);
}

bool ParseHistogramTail(std::istringstream* in, ProfileHistogram* hist) {
  double lo = 0.0;
  double hi = 0.0;
  if (!(*in >> lo >> hi) || !(hi > lo)) return false;
  std::vector<uint64_t> counts;
  uint64_t c = 0;
  while (*in >> c) counts.push_back(c);
  if (counts.empty()) return false;
  hist->Init(lo, hi, counts.size());
  hist->counts = std::move(counts);
  hist->total = 0;
  for (uint64_t n : hist->counts) hist->total += n;
  return true;
}

void WriteHistogramTail(std::ostringstream* out,
                        const ProfileHistogram& hist) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g %.17g", hist.lo, hist.hi);
  *out << buffer;
  for (uint64_t c : hist.counts) *out << ' ' << c;
  *out << '\n';
}

}  // namespace

void ProfileHistogram::Init(double lo_bound, double hi_bound, size_t bins) {
  lo = lo_bound;
  hi = hi_bound;
  counts.assign(bins == 0 ? 1 : bins, 0);
  total = 0;
}

size_t ProfileHistogram::BinOf(double value) const {
  if (value <= lo) return 0;
  if (value >= hi) return counts.size() - 1;
  const double unit = (value - lo) / (hi - lo);
  const auto bin =
      static_cast<size_t>(unit * static_cast<double>(counts.size()));
  return std::min(bin, counts.size() - 1);
}

void ProfileHistogram::Add(double value) {
  if (std::isnan(value)) return;
  ++counts[BinOf(value)];
  ++total;
}

ProfileHistogram ProfileHistogram::EmptyClone() const {
  ProfileHistogram clone;
  clone.Init(lo, hi, counts.size());
  return clone;
}

double Psi(const ProfileHistogram& reference, const ProfileHistogram& window) {
  if (reference.total == 0 || window.total == 0 ||
      reference.counts.size() != window.counts.size()) {
    return 0.0;
  }
  double psi = 0.0;
  for (size_t i = 0; i < reference.counts.size(); ++i) {
    const double p = std::max(
        kPsiEpsilon, static_cast<double>(reference.counts[i]) /
                         static_cast<double>(reference.total));
    const double q =
        std::max(kPsiEpsilon, static_cast<double>(window.counts[i]) /
                                  static_cast<double>(window.total));
    psi += (q - p) * std::log(q / p);
  }
  return psi;
}

double KsStatistic(const ProfileHistogram& reference,
                   const ProfileHistogram& window) {
  if (reference.total == 0 || window.total == 0 ||
      reference.counts.size() != window.counts.size()) {
    return 0.0;
  }
  double ks = 0.0;
  double cdf_p = 0.0;
  double cdf_q = 0.0;
  for (size_t i = 0; i < reference.counts.size(); ++i) {
    cdf_p += static_cast<double>(reference.counts[i]) /
             static_cast<double>(reference.total);
    cdf_q += static_cast<double>(window.counts[i]) /
             static_cast<double>(window.total);
    ks = std::max(ks, std::fabs(cdf_p - cdf_q));
  }
  return ks;
}

double EntityNameLength(const data::SpatialEntity& entity) {
  return static_cast<double>(entity.name.size());
}

ReferenceProfile BuildReferenceProfile(const data::Dataset& dataset,
                                       const ml::FeatureMatrix& matrix,
                                       const std::vector<double>& scores,
                                       uint64_t model_hash) {
  ReferenceProfile profile;
  profile.model_hash = model_hash;

  profile.features.resize(matrix.cols);
  for (ProfileHistogram& hist : profile.features) {
    hist.Init(0.0, 1.0, kFeatureBins);
  }
  for (size_t r = 0; r < matrix.rows; ++r) {
    const double* row = matrix.Row(r);
    for (size_t c = 0; c < matrix.cols; ++c) {
      profile.features[c].Add(row[c]);
    }
  }

  InitFromRange(&profile.score, ml::FiniteRange(scores), kScoreBins);
  for (double s : scores) profile.score.Add(s);

  std::vector<double> lats;
  std::vector<double> lons;
  std::vector<double> name_lens;
  lats.reserve(dataset.size());
  lons.reserve(dataset.size());
  name_lens.reserve(dataset.size());
  for (const data::SpatialEntity& e : dataset.entities) {
    if (e.location.valid) {
      lats.push_back(e.location.lat);
      lons.push_back(e.location.lon);
    }
    name_lens.push_back(EntityNameLength(e));
  }
  InitFromRange(&profile.entity_lat, ml::FiniteRange(lats), kEntityBins);
  InitFromRange(&profile.entity_lon, ml::FiniteRange(lons), kEntityBins);
  InitFromRange(&profile.entity_name_len, ml::FiniteRange(name_lens),
                kEntityBins);
  for (double v : lats) profile.entity_lat.Add(v);
  for (double v : lons) profile.entity_lon.Add(v);
  for (double v : name_lens) profile.entity_name_len.Add(v);
  return profile;
}

std::string SaveProfile(const ReferenceProfile& profile) {
  std::ostringstream out;
  out << "skyex_profile_version: " << profile.version << '\n';
  out << "model_hash: " << HashHex(profile.model_hash) << '\n';
  for (size_t c = 0; c < profile.features.size(); ++c) {
    out << "feature_hist: " << c << ' ';
    WriteHistogramTail(&out, profile.features[c]);
  }
  out << "score_hist: ";
  WriteHistogramTail(&out, profile.score);
  out << "entity_lat_hist: ";
  WriteHistogramTail(&out, profile.entity_lat);
  out << "entity_lon_hist: ";
  WriteHistogramTail(&out, profile.entity_lon);
  out << "entity_name_len_hist: ";
  WriteHistogramTail(&out, profile.entity_name_len);
  return out.str();
}

std::optional<ReferenceProfile> LoadProfile(const std::string& text,
                                            std::string* error) {
  ReferenceProfile profile;
  bool saw_version = false;
  bool saw_score = false;
  std::istringstream lines(text);
  std::string line;
  size_t line_no = 0;
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "profile line " + std::to_string(line_no) + ": " + why;
    }
    return std::nullopt;
  };
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty()) continue;
    const size_t colon = line.find(": ");
    if (colon == std::string::npos) return fail("expected 'key: value'");
    const std::string key = line.substr(0, colon);
    std::istringstream value(line.substr(colon + 2));
    if (key == "skyex_profile_version") {
      if (!(value >> profile.version) || profile.version != 1) {
        return fail("unsupported version");
      }
      saw_version = true;
    } else if (key == "model_hash") {
      std::string hex;
      if (!(value >> hex)) return fail("bad model_hash");
      profile.model_hash = std::strtoull(hex.c_str(), nullptr, 16);
    } else if (key == "feature_hist") {
      size_t column = 0;
      if (!(value >> column)) return fail("bad feature column");
      if (column >= profile.features.size()) {
        profile.features.resize(column + 1);
      }
      if (!ParseHistogramTail(&value, &profile.features[column])) {
        return fail("bad feature histogram");
      }
    } else if (key == "score_hist") {
      if (!ParseHistogramTail(&value, &profile.score)) {
        return fail("bad score histogram");
      }
      saw_score = true;
    } else if (key == "entity_lat_hist") {
      if (!ParseHistogramTail(&value, &profile.entity_lat)) {
        return fail("bad entity_lat histogram");
      }
    } else if (key == "entity_lon_hist") {
      if (!ParseHistogramTail(&value, &profile.entity_lon)) {
        return fail("bad entity_lon histogram");
      }
    } else if (key == "entity_name_len_hist") {
      if (!ParseHistogramTail(&value, &profile.entity_name_len)) {
        return fail("bad entity_name_len histogram");
      }
    } else {
      // Unknown keys are skipped so the format can grow.
      continue;
    }
  }
  line_no = 0;
  if (!saw_version) return fail("missing skyex_profile_version");
  if (!saw_score) return fail("missing score_hist");
  return profile;
}

bool SaveProfileToFile(const ReferenceProfile& profile,
                       const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  const std::string text = SaveProfile(profile);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(out);
}

std::optional<ReferenceProfile> LoadProfileFromFile(const std::string& path,
                                                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open profile '" + path + "'";
    return std::nullopt;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return LoadProfile(text, error);
}

}  // namespace skyex::quality
