#ifndef SKYEX_QUALITY_DRIFT_H_
#define SKYEX_QUALITY_DRIFT_H_

// Online drift detection against a train-time ReferenceProfile.
// Observations accumulate into two independent sliding windows:
//
//   row window     — one observation per scored candidate pair: the
//                    LGM-X feature vector and its model score. When
//                    `window` rows complete, per-feature PSI and a
//                    score-distribution KS statistic are evaluated and
//                    the window restarts.
//   entity window  — one observation per incoming entity (lat, lon,
//                    name length). Evaluated every `entity_window`
//                    entities. Separate on purpose: traffic whose
//                    coordinates drifted out of the served region
//                    produces NO candidate rows, so only this window
//                    can see it.
//
// The detector is pure state + math; publishing gauges, flight-recorder
// markers and the /debug/quality JSON is the Runtime's job
// (src/quality/quality.h). Not thread-safe — callers serialize (the
// Runtime wraps it in a mutex).

#include <cstdint>
#include <vector>

#include "data/spatial_entity.h"
#include "quality/profile.h"

namespace skyex::quality {

struct DriftOptions {
  size_t window = 512;         // observed (post-decimation) rows per evaluation
  size_t entity_window = 256;  // entities per evaluation
  /// Row decimation: observe every Nth scored row (1 = all). One request
  /// contributes a correlated burst of rows (every candidate shares the
  /// incoming entity), so an undecimated window spans only a handful of
  /// requests and its PSI is dominated by per-entity variance rather
  /// than traffic drift. The default spreads a window of 512 across
  /// ~8k scored rows.
  size_t row_sample_every = 16;
  /// PSI past this (any feature, or any entity dimension) counts the
  /// evaluation as a drift trip. 0.25 is the conventional "major
  /// shift" boundary.
  double psi_threshold = 0.25;
  /// KS statistic on the score distribution past this trips too.
  double ks_threshold = 0.25;
};

class DriftDetector {
 public:
  DriftDetector(ReferenceProfile profile, DriftOptions options);

  /// One incoming entity (every request, sampled or not — it is cheap).
  void ObserveEntity(const data::SpatialEntity& entity);

  /// One scored candidate pair: feature row + model score. `n` must be
  /// the profile's feature count (mismatched rows are ignored).
  void ObserveRow(const double* row, size_t n, double score);

  struct Stats {
    uint64_t row_windows = 0;     // completed row-window evaluations
    uint64_t entity_windows = 0;  // completed entity-window evaluations
    uint64_t trips = 0;           // evaluations past a threshold
    // Results of the most recent evaluations (0 until the first one).
    double psi_feature_max = 0.0;
    int psi_feature_argmax = -1;
    double ks_score = 0.0;
    double psi_lat = 0.0;
    double psi_lon = 0.0;
    double psi_name_len = 0.0;
    bool drifting = false;  // the latest completed evaluation tripped
    // Fill of the currently accumulating (incomplete) windows.
    uint64_t rows_pending = 0;
    uint64_t entities_pending = 0;
  };
  const Stats& stats() const { return stats_; }
  const DriftOptions& options() const { return options_; }
  const ReferenceProfile& profile() const { return profile_; }

 private:
  void EvaluateRowWindow();
  void EvaluateEntityWindow();

  ReferenceProfile profile_;
  DriftOptions options_;
  Stats stats_;

  std::vector<ProfileHistogram> feature_window_;
  ProfileHistogram score_window_;
  ProfileHistogram lat_window_;
  ProfileHistogram lon_window_;
  ProfileHistogram name_len_window_;
  uint64_t rows_seen_ = 0;  // pre-decimation, drives row_sample_every
  uint64_t rows_in_window_ = 0;
  uint64_t entities_in_window_ = 0;
};

}  // namespace skyex::quality

#endif  // SKYEX_QUALITY_DRIFT_H_
