#include "quality/drift.h"

#include <utility>

namespace skyex::quality {

DriftDetector::DriftDetector(ReferenceProfile profile, DriftOptions options)
    : profile_(std::move(profile)), options_(options) {
  if (options_.window == 0) options_.window = 1;
  if (options_.entity_window == 0) options_.entity_window = 1;
  if (options_.row_sample_every == 0) options_.row_sample_every = 1;
  feature_window_.reserve(profile_.features.size());
  for (const ProfileHistogram& hist : profile_.features) {
    feature_window_.push_back(hist.EmptyClone());
  }
  score_window_ = profile_.score.EmptyClone();
  lat_window_ = profile_.entity_lat.EmptyClone();
  lon_window_ = profile_.entity_lon.EmptyClone();
  name_len_window_ = profile_.entity_name_len.EmptyClone();
}

void DriftDetector::ObserveEntity(const data::SpatialEntity& entity) {
  if (entity.location.valid) {
    lat_window_.Add(entity.location.lat);
    lon_window_.Add(entity.location.lon);
  }
  name_len_window_.Add(EntityNameLength(entity));
  ++entities_in_window_;
  stats_.entities_pending = entities_in_window_;
  if (entities_in_window_ >= options_.entity_window) EvaluateEntityWindow();
}

void DriftDetector::ObserveRow(const double* row, size_t n, double score) {
  if (n != feature_window_.size()) return;
  // Decimate: one request contributes a burst of rows that all share the
  // incoming entity, so consecutive rows are heavily correlated and a
  // window filled from a handful of requests compares a few entities'
  // candidate neighborhoods — not the traffic distribution — against
  // the profile (PSI blows up on calm traffic). Taking every Nth row
  // spreads a window across ~N× more requests at no extra cost.
  if (rows_seen_++ % options_.row_sample_every != 0) return;
  for (size_t c = 0; c < n; ++c) feature_window_[c].Add(row[c]);
  score_window_.Add(score);
  ++rows_in_window_;
  stats_.rows_pending = rows_in_window_;
  if (rows_in_window_ >= options_.window) EvaluateRowWindow();
}

void DriftDetector::EvaluateRowWindow() {
  double psi_max = 0.0;
  int argmax = -1;
  for (size_t c = 0; c < feature_window_.size(); ++c) {
    const double psi = Psi(profile_.features[c], feature_window_[c]);
    if (psi > psi_max) {
      psi_max = psi;
      argmax = static_cast<int>(c);
    }
  }
  stats_.psi_feature_max = psi_max;
  stats_.psi_feature_argmax = argmax;
  stats_.ks_score = KsStatistic(profile_.score, score_window_);
  ++stats_.row_windows;
  stats_.drifting = psi_max > options_.psi_threshold ||
                    stats_.ks_score > options_.ks_threshold;
  if (stats_.drifting) ++stats_.trips;

  for (ProfileHistogram& hist : feature_window_) hist = hist.EmptyClone();
  score_window_ = score_window_.EmptyClone();
  rows_in_window_ = 0;
  stats_.rows_pending = 0;
}

void DriftDetector::EvaluateEntityWindow() {
  stats_.psi_lat = Psi(profile_.entity_lat, lat_window_);
  stats_.psi_lon = Psi(profile_.entity_lon, lon_window_);
  stats_.psi_name_len = Psi(profile_.entity_name_len, name_len_window_);
  ++stats_.entity_windows;
  stats_.drifting = stats_.psi_lat > options_.psi_threshold ||
                    stats_.psi_lon > options_.psi_threshold ||
                    stats_.psi_name_len > options_.psi_threshold;
  if (stats_.drifting) ++stats_.trips;

  lat_window_ = lat_window_.EmptyClone();
  lon_window_ = lon_window_.EmptyClone();
  name_len_window_ = name_len_window_.EmptyClone();
  entities_in_window_ = 0;
  stats_.entities_pending = 0;
}

}  // namespace skyex::quality
