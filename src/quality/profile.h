#ifndef SKYEX_QUALITY_PROFILE_H_
#define SKYEX_QUALITY_PROFILE_H_

// Reference profile for drift detection: the per-feature and score
// distributions the model saw at training time, captured as fixed-bin
// histograms, plus entity-level histograms (latitude, longitude, name
// length) of the training corpus. `skyex train` persists one of these
// alongside the model (<model>.profile); the serving layer compares
// live sliding windows against it with PSI (population stability index)
// per dimension and a KS statistic on the score distribution — see
// src/quality/drift.h and docs/observability.md, "Linkage quality".
//
// The entity-level histograms exist because feature-level drift is
// blind to traffic that stops producing candidate pairs at all: an
// upstream feeding coordinates from the wrong region yields empty
// candidate sets (no feature rows), which only the lat/lon histograms
// can flag.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/spatial_entity.h"
#include "ml/dataset_view.h"

namespace skyex::quality {

/// Equal-width histogram over [lo, hi); values below lo clamp to the
/// first bin, values at/above hi to the last. NaN is ignored.
struct ProfileHistogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<uint64_t> counts;
  uint64_t total = 0;

  void Init(double lo_bound, double hi_bound, size_t bins);
  void Add(double value);
  size_t BinOf(double value) const;
  /// Same bounds and bin count, zero counts — the shape live windows
  /// accumulate into so PSI/KS compare bin-for-bin.
  ProfileHistogram EmptyClone() const;
};

/// Population stability index of `window` against `reference`:
/// sum_i (q_i - p_i) * ln(q_i / p_i) over bin proportions, with the
/// proportions floored at a small epsilon so empty bins contribute a
/// large-but-finite surprise. 0 when either side has no mass.
/// Conventional reading: < 0.1 stable, 0.1–0.25 drifting, > 0.25 major
/// shift.
double Psi(const ProfileHistogram& reference, const ProfileHistogram& window);

/// Kolmogorov–Smirnov statistic (max CDF gap, in [0, 1]) of `window`
/// against `reference` over the shared binning. 0 when either side has
/// no mass.
double KsStatistic(const ProfileHistogram& reference,
                   const ProfileHistogram& window);

struct ReferenceProfile {
  uint32_t version = 1;
  uint64_t model_hash = 0;
  std::vector<ProfileHistogram> features;  // one per feature column
  ProfileHistogram score;                  // prioritized group sums
  ProfileHistogram entity_lat;
  ProfileHistogram entity_lon;
  ProfileHistogram entity_name_len;  // normalized-length proxy for text shape
};

/// Builds the train-time profile: feature histograms over every row of
/// `matrix` (16 bins, [0, 1] — the LGM-X feature range), the score
/// histogram over `scores` (32 bins, data-derived padded bounds), and
/// entity histograms over `dataset` (data-derived bounds). `scores`
/// must have one entry per matrix row.
ReferenceProfile BuildReferenceProfile(const data::Dataset& dataset,
                                       const ml::FeatureMatrix& matrix,
                                       const std::vector<double>& scores,
                                       uint64_t model_hash);

/// Line-oriented text form (round-trips exactly; counts are integers):
///
///   skyex_profile_version: 1
///   model_hash: 00af9c...
///   feature_hist: <col> <lo> <hi> <c0> <c1> ...
///   score_hist: <lo> <hi> <c0> ...
///   entity_lat_hist: ... / entity_lon_hist: ... / entity_name_len_hist: ...
std::string SaveProfile(const ReferenceProfile& profile);
std::optional<ReferenceProfile> LoadProfile(const std::string& text,
                                            std::string* error = nullptr);

bool SaveProfileToFile(const ReferenceProfile& profile,
                       const std::string& path);
std::optional<ReferenceProfile> LoadProfileFromFile(
    const std::string& path, std::string* error = nullptr);

/// The entity-level name-length value observed for drift purposes.
double EntityNameLength(const data::SpatialEntity& entity);

}  // namespace skyex::quality

#endif  // SKYEX_QUALITY_PROFILE_H_
