#include "quality/audit_log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace skyex::quality {

namespace {

constexpr uint32_t kRecordMagic = 0xAD17CA11;
constexpr size_t kFrameHeaderBytes = 4 + 4 + 8;  // magic + len + checksum
/// Sanity cap on one payload: a corrupt length field must not trigger a
/// multi-gigabyte allocation.
constexpr size_t kMaxPayloadBytes = size_t{1} << 26;

uint64_t Fnv1a(const char* data, size_t size, uint64_t hash = 0xcbf29ce484222325ULL) {
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

template <typename T>
void AppendRaw(std::string* out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

void AppendDoubles(std::string* out, const std::vector<double>& values) {
  AppendRaw<uint32_t>(out, static_cast<uint32_t>(values.size()));
  if (!values.empty()) {
    out->append(reinterpret_cast<const char*>(values.data()),
                values.size() * sizeof(double));
  }
}

/// Bounds-checked sequential reader over a payload.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* out) {
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadDoubles(std::vector<double>* out) {
    uint32_t n = 0;
    if (!Read(&n)) return false;
    if ((bytes_.size() - pos_) / sizeof(double) < n) return false;
    out->resize(n);
    if (n > 0) {
      std::memcpy(out->data(), bytes_.data() + pos_, n * sizeof(double));
      pos_ += n * sizeof(double);
    }
    return true;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

std::string EncodePayload(const AuditRecord& record) {
  std::string payload;
  AppendRaw<uint64_t>(&payload, record.request_id);
  AppendRaw<uint64_t>(&payload, record.entity_id);
  AppendRaw<uint32_t>(&payload, record.shard_id);
  AppendRaw<uint8_t>(&payload, record.degraded ? 1 : 0);
  AppendRaw<uint64_t>(&payload, record.model_hash);
  AppendDoubles(&payload, record.capture.threshold_key);
  AppendRaw<uint32_t>(&payload,
                      static_cast<uint32_t>(record.capture.decisions.size()));
  for (const CandidateDecision& d : record.capture.decisions) {
    AppendRaw<uint64_t>(&payload, d.candidate_id);
    AppendRaw<uint32_t>(&payload, d.candidate_index);
    uint8_t flags = 0;
    if (d.prefilter_pass) flags |= 1;
    if (d.scored) flags |= 2;
    if (d.accepted) flags |= 4;
    AppendRaw<uint8_t>(&payload, flags);
    AppendRaw<double>(&payload, d.prefilter_estimate);
    AppendRaw<double>(&payload, d.score);
    AppendDoubles(&payload, d.features);
  }
  return payload;
}

bool DecodePayload(std::string_view payload, AuditRecord* record) {
  Cursor cursor(payload);
  uint8_t degraded = 0;
  if (!cursor.Read(&record->request_id) || !cursor.Read(&record->entity_id) ||
      !cursor.Read(&record->shard_id) || !cursor.Read(&degraded) ||
      !cursor.Read(&record->model_hash) ||
      !cursor.ReadDoubles(&record->capture.threshold_key)) {
    return false;
  }
  record->degraded = degraded != 0;
  uint32_t decisions = 0;
  if (!cursor.Read(&decisions)) return false;
  record->capture.decisions.clear();
  record->capture.decisions.reserve(decisions);
  for (uint32_t i = 0; i < decisions; ++i) {
    CandidateDecision d;
    uint8_t flags = 0;
    if (!cursor.Read(&d.candidate_id) || !cursor.Read(&d.candidate_index) ||
        !cursor.Read(&flags) || !cursor.Read(&d.prefilter_estimate) ||
        !cursor.Read(&d.score) || !cursor.ReadDoubles(&d.features)) {
      return false;
    }
    d.prefilter_pass = (flags & 1) != 0;
    d.scored = (flags & 2) != 0;
    d.accepted = (flags & 4) != 0;
    record->capture.decisions.push_back(std::move(d));
  }
  return cursor.exhausted();
}

}  // namespace

uint64_t HashModelText(std::string_view model_text) {
  return Fnv1a(model_text.data(), model_text.size());
}

std::string HashHex(uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buffer);
}

std::string EncodeAuditHeader(const AuditLogHeader& header) {
  return "skyexaudit v" + std::to_string(header.version) +
         " features=" + std::to_string(header.feature_count) +
         " model=" + HashHex(header.model_hash) + "\n";
}

std::string EncodeAuditRecord(const AuditRecord& record) {
  const std::string payload = EncodePayload(record);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendRaw<uint32_t>(&frame, kRecordMagic);
  AppendRaw<uint32_t>(&frame, static_cast<uint32_t>(payload.size()));
  AppendRaw<uint64_t>(&frame, Fnv1a(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

bool DecodeAuditLog(std::string_view bytes, AuditLogHeader* header,
                    std::vector<AuditRecord>* records, AuditReadStats* stats,
                    std::string* error) {
  records->clear();
  *stats = AuditReadStats{};
  const size_t newline = bytes.find('\n');
  if (newline == std::string_view::npos) {
    if (error != nullptr) *error = "audit log has no header line";
    return false;
  }
  const std::string line(bytes.substr(0, newline));
  unsigned version = 0;
  unsigned features = 0;
  char model_hex[17] = {0};
  if (std::sscanf(line.c_str(), "skyexaudit v%u features=%u model=%16s",
                  &version, &features, model_hex) != 3 ||
      version != 1) {
    if (error != nullptr) {
      *error = "unrecognized audit log header: '" + line + "'";
    }
    return false;
  }
  header->version = version;
  header->feature_count = features;
  header->model_hash = std::strtoull(model_hex, nullptr, 16);

  size_t pos = newline + 1;
  while (pos < bytes.size()) {
    // Any decode failure from here on is a torn tail, not an error: the
    // writer appends whole frames, so a partial or corrupt frame can
    // only be the crash remnant (or trailing garbage) at the end.
    if (bytes.size() - pos < kFrameHeaderBytes) break;
    uint32_t magic = 0;
    uint32_t length = 0;
    uint64_t checksum = 0;
    std::memcpy(&magic, bytes.data() + pos, 4);
    std::memcpy(&length, bytes.data() + pos + 4, 4);
    std::memcpy(&checksum, bytes.data() + pos + 8, 8);
    if (magic != kRecordMagic || length > kMaxPayloadBytes) break;
    if (bytes.size() - pos - kFrameHeaderBytes < length) break;
    const std::string_view payload =
        bytes.substr(pos + kFrameHeaderBytes, length);
    if (Fnv1a(payload.data(), payload.size()) != checksum) break;
    AuditRecord record;
    if (!DecodePayload(payload, &record)) break;
    records->push_back(std::move(record));
    pos += kFrameHeaderBytes + length;
  }
  stats->records = records->size();
  stats->torn_tail_bytes = bytes.size() - pos;
  return true;
}

bool ReadAuditLog(const std::string& path, AuditLogHeader* header,
                  std::vector<AuditRecord>* records, AuditReadStats* stats,
                  std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open audit log '" + path + "'";
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return DecodeAuditLog(bytes, header, records, stats, error);
}

AuditWriter::~AuditWriter() { Close(); }

bool AuditWriter::Open(const AuditWriterOptions& options,
                       const AuditLogHeader& header, std::string* error) {
  Close();
  options_ = options;
  if (options_.sample_every == 0) options_.sample_every = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  stream_.open(options_.path, std::ios::binary | std::ios::trunc);
  if (!stream_) {
    if (error != nullptr) {
      *error = "cannot create audit log '" + options_.path + "'";
    }
    return false;
  }
  const std::string head = EncodeAuditHeader(header);
  stream_.write(head.data(), static_cast<std::streamsize>(head.size()));
  stream_.flush();
  closing_ = false;
  writing_ = false;
  attempts_.store(0, std::memory_order_relaxed);
  sampled_.store(0, std::memory_order_relaxed);
  written_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  writer_ = std::thread(&AuditWriter::WriterLoop, this);
  open_.store(true, std::memory_order_release);
  return true;
}

bool AuditWriter::ShouldSample() {
  if (!open()) return false;
  const uint64_t n = attempts_.fetch_add(1, std::memory_order_relaxed);
  if (n % options_.sample_every != 0) return false;
  sampled_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void AuditWriter::Append(AuditRecord record) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closing_ || !open() || queue_.size() >= options_.queue_capacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    queue_.push_back(std::move(record));
  }
  work_cv_.notify_one();
}

void AuditWriter::WriterLoop() {
  for (;;) {
    std::deque<AuditRecord> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return closing_ || !queue_.empty(); });
      if (queue_.empty() && closing_) return;
      batch.swap(queue_);
      writing_ = true;
    }
    for (const AuditRecord& record : batch) {
      const std::string frame = EncodeAuditRecord(record);
      stream_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
      written_.fetch_add(1, std::memory_order_relaxed);
    }
    stream_.flush();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      writing_ = false;
    }
    drained_cv_.notify_all();
  }
}

void AuditWriter::Flush() {
  if (!open()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  drained_cv_.wait(lock, [&] { return queue_.empty() && !writing_; });
}

void AuditWriter::Close() {
  if (!writer_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closing_ = true;
  }
  work_cv_.notify_all();
  writer_.join();
  open_.store(false, std::memory_order_release);
  stream_.flush();
  stream_.close();
}

}  // namespace skyex::quality
