#ifndef SKYEX_QUALITY_AUDIT_LOG_H_
#define SKYEX_QUALITY_AUDIT_LOG_H_

// Decision audit log: an append-only, sampled record of every link
// decision the serving layer makes, written asynchronously so the
// linker thread never blocks on disk. Each record carries enough to
// re-run the decision offline without the serving dataset: the request
// id, the incoming entity id, the shard that decided, the calibrated
// skyline cutoff (threshold key), and per candidate the prefilter
// verdict, the full LGM-X feature vector and the model score — so
// `skyex_audit replay` can reproduce scores and accept/reject verdicts
// bit-identically from the log alone (docs/observability.md, "Linkage
// quality").
//
// On-disk format (host-endian, self-describing):
//
//   header   one text line: "skyexaudit v1 features=<N> model=<hex16>\n"
//   record   [u32 magic][u32 payload_len][u64 fnv1a(payload)][payload]
//
// The framing makes the log crash-tolerant: a reader accepts every
// intact frame and stops at the first torn or corrupt one, reporting
// the remaining bytes as a torn tail instead of failing — a process
// killed mid-write loses at most the record being written.
//
// Everything here is plain library code (always compiled); the serving
// hooks that FEED it are the part gated by SKYEX_OBS, consistent with
// the compile-out contract in docs/observability.md.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace skyex::quality {

/// FNV-1a over the model_io text — the "model version hash" stamped
/// into audit logs and reference profiles so offline tools can tell
/// whether they are replaying against the same model that decided.
uint64_t HashModelText(std::string_view model_text);

/// Fixed-width lowercase hex of a 64-bit hash ("00af...").
std::string HashHex(uint64_t hash);

/// One candidate the linker looked at while linking an entity. A
/// prefilter-dropped candidate keeps `scored` false and its feature
/// vector empty; a scored one carries the full feature row and the
/// model score (the prioritized group sum, bit-exact as served).
struct CandidateDecision {
  uint64_t candidate_id = 0;
  uint32_t candidate_index = 0;  // dataset index at decision time
  bool prefilter_pass = true;
  bool scored = false;
  bool accepted = false;
  double prefilter_estimate = 0.0;  // sketch token-overlap estimate
  double score = 0.0;
  std::vector<double> features;
};

/// What IncrementalLinker::MatchRecord captures when asked: the
/// calibrated threshold key in force (the "skyline cutoff") plus every
/// candidate decision, dropped and scored alike.
struct MatchCapture {
  std::vector<double> threshold_key;
  std::vector<CandidateDecision> decisions;
};

/// One audit-log record: a full link decision for one incoming entity.
struct AuditRecord {
  uint64_t request_id = 0;
  uint64_t entity_id = 0;
  uint32_t shard_id = 0;
  bool degraded = false;  // answered by the fallback path (no decisions)
  uint64_t model_hash = 0;
  MatchCapture capture;
};

struct AuditLogHeader {
  uint32_t version = 1;
  uint32_t feature_count = 0;
  uint64_t model_hash = 0;
};

/// The header text line (with trailing newline).
std::string EncodeAuditHeader(const AuditLogHeader& header);

/// One framed record: magic + length + checksum + payload.
std::string EncodeAuditRecord(const AuditRecord& record);

struct AuditReadStats {
  size_t records = 0;          // intact records decoded
  size_t torn_tail_bytes = 0;  // bytes after the last intact frame
};

/// Decodes a complete log image. Returns false (with `error`) only when
/// the header itself is unusable; torn or corrupt frames after a valid
/// header are not an error — decoding stops there and the remainder is
/// counted in `stats->torn_tail_bytes`.
bool DecodeAuditLog(std::string_view bytes, AuditLogHeader* header,
                    std::vector<AuditRecord>* records, AuditReadStats* stats,
                    std::string* error);

/// File variant of DecodeAuditLog. False + `error` on I/O failure too.
bool ReadAuditLog(const std::string& path, AuditLogHeader* header,
                  std::vector<AuditRecord>* records, AuditReadStats* stats,
                  std::string* error);

struct AuditWriterOptions {
  std::string path;
  /// Entity-level decimation: capture every Nth link attempt (1 = all).
  uint64_t sample_every = 1;
  /// Bounded hand-off queue to the writer thread; records arriving at a
  /// full queue are dropped (and counted) rather than blocking the
  /// linker.
  size_t queue_capacity = 1024;
};

/// Asynchronous audit-log writer: producers enqueue records under a
/// short lock, a dedicated thread serializes and appends them. Open /
/// Close bracket a log file; Append and ShouldSample are thread-safe.
class AuditWriter {
 public:
  AuditWriter() = default;
  ~AuditWriter();

  /// Creates (truncates) `options.path` and writes the header. False +
  /// `error` when the file cannot be opened.
  bool Open(const AuditWriterOptions& options, const AuditLogHeader& header,
            std::string* error);

  bool open() const { return open_.load(std::memory_order_acquire); }

  /// Counts a link attempt and decides whether to capture it. The
  /// decimation is deterministic (every sample_every-th attempt), so a
  /// run with --audit-sample=1 logs every decision.
  bool ShouldSample();

  /// Enqueues a record for the writer thread; drops (and counts) when
  /// the queue is full or the writer is closed. Never blocks on I/O.
  void Append(AuditRecord record);

  /// Blocks until every enqueued record reached the stream and the
  /// stream is flushed.
  void Flush();

  /// Flush + join + close. Idempotent; the destructor calls it.
  void Close();

  uint64_t attempts() const { return attempts_.load(std::memory_order_relaxed); }
  uint64_t sampled() const { return sampled_.load(std::memory_order_relaxed); }
  uint64_t written() const { return written_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  const std::string& path() const { return options_.path; }
  uint64_t sample_every() const { return options_.sample_every; }

  AuditWriter(const AuditWriter&) = delete;
  AuditWriter& operator=(const AuditWriter&) = delete;

 private:
  void WriterLoop();

  AuditWriterOptions options_;
  std::atomic<bool> open_{false};
  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> sampled_{0};
  std::atomic<uint64_t> written_{0};
  std::atomic<uint64_t> dropped_{0};

  std::mutex mutex_;
  std::condition_variable work_cv_;     // queue became non-empty / closing
  std::condition_variable drained_cv_;  // queue empty and writer idle
  std::deque<AuditRecord> queue_;
  bool closing_ = false;
  bool writing_ = false;  // writer thread holds a popped batch
  std::ofstream stream_;
  std::thread writer_;
};

}  // namespace skyex::quality

#endif  // SKYEX_QUALITY_AUDIT_LOG_H_
