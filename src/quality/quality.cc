#include "quality/quality.h"

#include <cstdio>
#include <ostream>
#include <utility>

#include "obs/context.h"
#include "obs/flight.h"
#include "obs/metrics.h"

namespace skyex::quality {

namespace {

void WriteEscaped(std::ostream& out, const std::string& text) {
  out << '"';
  for (char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out << buffer;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Runtime& Runtime::Global() {
  static Runtime* runtime = new Runtime();  // leaked, like the registry
  return *runtime;
}

bool Runtime::Enable(const QualityOptions& options,
                     const std::string& model_text, size_t feature_count,
                     std::vector<std::string> feature_names,
                     std::string* error) {
#if defined(SKYEX_OBS_DISABLED)
  (void)options;
  (void)model_text;
  (void)feature_count;
  (void)feature_names;
  if (error != nullptr) {
    *error = "linkage-quality observability is compiled out (SKYEX_OBS=OFF)";
  }
  return false;
#else
  Disable();
  const uint64_t model_hash = HashModelText(model_text);
  const bool want_audit = !options.audit.path.empty();
  const bool want_drift = !options.profile_path.empty();
  if (!want_audit && !want_drift) {
    if (error != nullptr) {
      *error = "quality: neither an audit log nor a reference profile given";
    }
    return false;
  }
  std::unique_ptr<DriftDetector> detector;
  if (want_drift) {
    std::string load_error;
    auto profile = LoadProfileFromFile(options.profile_path, &load_error);
    if (!profile.has_value()) {
      if (error != nullptr) *error = "quality: " + load_error;
      return false;
    }
    if (profile->model_hash != model_hash) {
      if (error != nullptr) {
        *error = "quality: reference profile was built for model " +
                 HashHex(profile->model_hash) + " but serving model " +
                 HashHex(model_hash) + "; retrain or drop the profile";
      }
      return false;
    }
    if (profile->features.size() != feature_count) {
      if (error != nullptr) {
        *error = "quality: profile has " +
                 std::to_string(profile->features.size()) +
                 " feature histograms, schema has " +
                 std::to_string(feature_count);
      }
      return false;
    }
    detector =
        std::make_unique<DriftDetector>(std::move(*profile), options.drift);
  }
  if (want_audit) {
    AuditLogHeader header;
    header.feature_count = static_cast<uint32_t>(feature_count);
    header.model_hash = model_hash;
    if (!writer_.Open(options.audit, header, error)) return false;
  }
  const bool has_detector = detector != nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    model_hash_ = model_hash;
    profile_path_ = options.profile_path;
    feature_names_ = std::move(feature_names);
    drift_options_ = options.drift;
    detector_ = std::move(detector);
    marker_trips_seen_ = 0;
  }
  sample_every_ = options.audit.sample_every == 0 ? 1
                                                  : options.audit.sample_every;
  attempts_.store(0, std::memory_order_relaxed);
  sampled_.store(0, std::memory_order_relaxed);
  drift_on_.store(has_detector, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
  return true;
#endif  // SKYEX_OBS_DISABLED
}

void Runtime::Disable() {
  enabled_.store(false, std::memory_order_release);
  drift_on_.store(false, std::memory_order_release);
  writer_.Close();
  std::lock_guard<std::mutex> lock(mutex_);
  detector_.reset();
}

bool Runtime::enabled() const {
  return enabled_.load(std::memory_order_acquire);
}

bool Runtime::audit_enabled() const { return writer_.open(); }

bool Runtime::drift_enabled() const {
  return drift_on_.load(std::memory_order_acquire);
}

bool Runtime::ShouldCapture() {
  if (!enabled()) return false;
  const uint64_t n = attempts_.fetch_add(1, std::memory_order_relaxed);
  if (n % sample_every_ != 0) return false;
  sampled_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Runtime::MaybeEmitDriftMarker() {
  if (detector_ == nullptr) return;
  const DriftDetector::Stats& stats = detector_->stats();
  if (stats.trips <= marker_trips_seen_) return;
  marker_trips_seen_ = stats.trips;
  char detail[72];
  std::snprintf(detail, sizeof(detail),
                "psi_max=%.2f f=%d ks=%.2f lat=%.2f len=%.2f",
                stats.psi_feature_max, stats.psi_feature_argmax,
                stats.ks_score, stats.psi_lat, stats.psi_name_len);
  obs::FlightRecorder::Global().RecordEvent("quality_drift", detail);
}

void Runtime::ObserveEntity(const data::SpatialEntity& entity) {
  if (!drift_enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (detector_ == nullptr) return;
  detector_->ObserveEntity(entity);
  MaybeEmitDriftMarker();
}

void Runtime::RecordCapture(const data::SpatialEntity& entity,
                            uint32_t shard_id, MatchCapture capture) {
  if (!enabled()) return;
  if (drift_enabled()) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (detector_ != nullptr) {
      for (const CandidateDecision& d : capture.decisions) {
        if (!d.scored) continue;
        detector_->ObserveRow(d.features.data(), d.features.size(), d.score);
      }
      MaybeEmitDriftMarker();
    }
  }
  if (!writer_.open()) return;
  AuditRecord record;
  record.request_id = obs::CurrentContext().request_id;
  record.entity_id = entity.id;
  record.shard_id = shard_id;
  record.degraded = false;
  record.model_hash = model_hash_;
  record.capture = std::move(capture);
  writer_.Append(std::move(record));
}

void Runtime::RecordDegraded(const data::SpatialEntity& entity,
                             uint32_t shard_id) {
  if (!writer_.open()) return;
  AuditRecord record;
  record.request_id = obs::CurrentContext().request_id;
  record.entity_id = entity.id;
  record.shard_id = shard_id;
  record.degraded = true;
  record.model_hash = model_hash_;
  writer_.Append(std::move(record));
}

void Runtime::PublishMetrics() {
  if (!enabled()) return;
  const Snapshot snap = snapshot();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (snap.audit) {
    registry.GetGauge("quality/audit_attempts")
        .Set(static_cast<double>(snap.attempts));
    registry.GetGauge("quality/audit_sampled")
        .Set(static_cast<double>(snap.sampled));
    registry.GetGauge("quality/audit_written")
        .Set(static_cast<double>(snap.written));
    registry.GetGauge("quality/audit_dropped")
        .Set(static_cast<double>(snap.dropped));
  }
  if (snap.drift) {
    const DriftDetector::Stats& d = snap.drift_stats;
    registry.GetGauge("quality/psi_feature_max").Set(d.psi_feature_max);
    registry.GetGauge("quality/psi_feature_argmax")
        .Set(static_cast<double>(d.psi_feature_argmax));
    registry.GetGauge("quality/ks_score").Set(d.ks_score);
    registry.GetGauge("quality/psi_lat").Set(d.psi_lat);
    registry.GetGauge("quality/psi_lon").Set(d.psi_lon);
    registry.GetGauge("quality/psi_name_len").Set(d.psi_name_len);
    registry.GetGauge("quality/drift_row_windows")
        .Set(static_cast<double>(d.row_windows));
    registry.GetGauge("quality/drift_entity_windows")
        .Set(static_cast<double>(d.entity_windows));
    registry.GetGauge("quality/drift_trips")
        .Set(static_cast<double>(d.trips));
    registry.GetGauge("quality/drifting").Set(d.drifting ? 1.0 : 0.0);
  }
}

void Runtime::Flush() { writer_.Flush(); }

Runtime::Snapshot Runtime::snapshot() const {
  Snapshot snap;
  snap.enabled = enabled();
  snap.audit = writer_.open();
  snap.drift = drift_enabled();
  snap.audit_path = writer_.path();
  snap.sample_every = sample_every_;
  snap.attempts = attempts_.load(std::memory_order_relaxed);
  snap.sampled = sampled_.load(std::memory_order_relaxed);
  snap.written = writer_.written();
  snap.dropped = writer_.dropped();
  std::lock_guard<std::mutex> lock(mutex_);
  snap.model_hash = model_hash_;
  snap.profile_path = profile_path_;
  snap.drift_options = drift_options_;
  if (detector_ != nullptr) snap.drift_stats = detector_->stats();
  return snap;
}

void Runtime::WriteDebugJson(std::ostream& out) const {
  const Snapshot snap = snapshot();
  out << "{\"compiled\": " << (kQualityCompiledIn ? "true" : "false")
      << ", \"enabled\": " << (snap.enabled ? "true" : "false");
  out << ", \"model_hash\": ";
  WriteEscaped(out, HashHex(snap.model_hash));
  out << ", \"audit\": {\"enabled\": " << (snap.audit ? "true" : "false");
  if (snap.audit) {
    out << ", \"path\": ";
    WriteEscaped(out, snap.audit_path);
    out << ", \"sample_every\": " << snap.sample_every
        << ", \"attempts\": " << snap.attempts
        << ", \"sampled\": " << snap.sampled
        << ", \"written\": " << snap.written
        << ", \"dropped\": " << snap.dropped;
  }
  out << "}, \"drift\": {\"enabled\": " << (snap.drift ? "true" : "false");
  if (snap.drift) {
    const DriftDetector::Stats& d = snap.drift_stats;
    std::string feature = "none";
    if (d.psi_feature_argmax >= 0) {
      const auto index = static_cast<size_t>(d.psi_feature_argmax);
      std::lock_guard<std::mutex> lock(mutex_);
      feature = index < feature_names_.size() ? feature_names_[index]
                                              : "X" + std::to_string(index);
    }
    out << ", \"profile\": ";
    WriteEscaped(out, snap.profile_path);
    out << ", \"window\": " << snap.drift_options.window
        << ", \"row_sample_every\": " << snap.drift_options.row_sample_every
        << ", \"entity_window\": " << snap.drift_options.entity_window
        << ", \"psi_threshold\": " << snap.drift_options.psi_threshold
        << ", \"ks_threshold\": " << snap.drift_options.ks_threshold
        << ", \"row_windows\": " << d.row_windows
        << ", \"entity_windows\": " << d.entity_windows
        << ", \"trips\": " << d.trips
        << ", \"psi_feature_max\": " << d.psi_feature_max
        << ", \"psi_feature\": ";
    WriteEscaped(out, feature);
    out << ", \"ks_score\": " << d.ks_score
        << ", \"psi_lat\": " << d.psi_lat << ", \"psi_lon\": " << d.psi_lon
        << ", \"psi_name_len\": " << d.psi_name_len
        << ", \"drifting\": " << (d.drifting ? "true" : "false")
        << ", \"rows_pending\": " << d.rows_pending
        << ", \"entities_pending\": " << d.entities_pending;
  }
  out << "}}";
}

}  // namespace skyex::quality
