#ifndef SKYEX_QUALITY_QUALITY_H_
#define SKYEX_QUALITY_QUALITY_H_

// Linkage-quality observability runtime: the process-global object the
// serving layer hooks into. It owns the decision audit log writer
// (quality/audit_log.h) and the drift detector (quality/drift.h), and
// publishes their state as `quality/*` gauges on the metrics registry,
// `quality_drift` flight-recorder marker events, and the
// GET /debug/quality JSON.
//
// Compile-out contract (docs/observability.md): with SKYEX_OBS=OFF the
// serving hook sites vanish, Enable() refuses with "compiled out", and
// kQualityCompiledIn is false — but the API (and the audit-log /
// profile / drift library code) stays linked so offline tools always
// build. In the default build everything is inert until Enable() is
// called (skyex_serve does so when --audit-log or a reference profile
// is given).
//
// Thread-safety: Enable/Disable bracket serving; every other member is
// safe to call concurrently (the linker thread and per-shard node
// threads all feed the same runtime).

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/spatial_entity.h"
#include "quality/audit_log.h"
#include "quality/drift.h"
#include "quality/profile.h"

namespace skyex::quality {

#if defined(SKYEX_OBS_DISABLED)
inline constexpr bool kQualityCompiledIn = false;
#else
inline constexpr bool kQualityCompiledIn = true;
#endif

struct QualityOptions {
  /// audit.path empty leaves the audit log off.
  AuditWriterOptions audit;
  /// Empty leaves drift detection off.
  std::string profile_path;
  DriftOptions drift;
};

class Runtime {
 public:
  /// Leaked singleton, same lifetime contract as the metrics registry.
  static Runtime& Global();

  /// Opens the audit log and/or loads the reference profile.
  /// `model_text` is the served model's model_io text (its hash stamps
  /// every artifact); `feature_count` the LGM-X schema width;
  /// `feature_names` (optional) labels drift output. False + `error`
  /// when an artifact cannot be opened, the profile's model hash
  /// disagrees with the served model, or quality observability is
  /// compiled out (SKYEX_OBS=OFF).
  bool Enable(const QualityOptions& options, const std::string& model_text,
              size_t feature_count, std::vector<std::string> feature_names,
              std::string* error);

  /// Flushes and closes the audit log, drops the detector. Idempotent.
  void Disable();

  bool enabled() const;
  bool audit_enabled() const;
  bool drift_enabled() const;

  /// Per-link-attempt capture decision (audit sampling). False whenever
  /// nothing needs the capture, so the linker skips the serial capture
  /// path entirely.
  bool ShouldCapture();

  /// Entity-level drift observation — called for every incoming entity,
  /// sampled or not.
  void ObserveEntity(const data::SpatialEntity& entity);

  /// A captured link decision: appends the audit record and feeds the
  /// scored rows to the drift detector. `capture` is consumed.
  void RecordCapture(const data::SpatialEntity& entity, uint32_t shard_id,
                     MatchCapture capture);

  /// A degraded-path answer for a sampled entity: a decision-less audit
  /// record with the degraded flag.
  void RecordDegraded(const data::SpatialEntity& entity, uint32_t shard_id);

  /// Pushes audit counters and drift statistics into the metrics
  /// registry as `quality/*` gauges (the /metrics handler calls this
  /// per scrape, like the process gauges).
  void PublishMetrics();

  /// Blocks until queued audit records are on disk.
  void Flush();

  struct Snapshot {
    bool enabled = false;
    bool audit = false;
    bool drift = false;
    uint64_t model_hash = 0;
    std::string audit_path;
    uint64_t sample_every = 1;
    uint64_t attempts = 0;
    uint64_t sampled = 0;
    uint64_t written = 0;
    uint64_t dropped = 0;
    std::string profile_path;
    DriftOptions drift_options;
    DriftDetector::Stats drift_stats;
  };
  Snapshot snapshot() const;

  /// The GET /debug/quality body: a JSON object with "compiled",
  /// "enabled", "audit" and "drift" members (docs/observability.md).
  void WriteDebugJson(std::ostream& out) const;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

 private:
  Runtime() = default;
  ~Runtime() = default;

  /// Under mutex_: flight marker for drift trips not yet reported.
  void MaybeEmitDriftMarker();

  // Hot-path flags are atomics so ShouldCapture/ObserveEntity cost one
  // relaxed load when quality observability is off.
  std::atomic<bool> enabled_{false};
  std::atomic<bool> drift_on_{false};
  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> sampled_{0};
  uint64_t sample_every_ = 1;

  mutable std::mutex mutex_;  // guards detector_ and the fields below
  uint64_t model_hash_ = 0;
  std::string profile_path_;
  std::vector<std::string> feature_names_;
  DriftOptions drift_options_;
  std::unique_ptr<DriftDetector> detector_;
  uint64_t marker_trips_seen_ = 0;  // drift trips already sent to flight

  AuditWriter writer_;  // internally synchronized
};

}  // namespace skyex::quality

#endif  // SKYEX_QUALITY_QUALITY_H_
