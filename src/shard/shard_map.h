#ifndef SKYEX_SHARD_SHARD_MAP_H_
#define SKYEX_SHARD_SHARD_MAP_H_

// Geo-partitioned shard ownership derived from quadtree cell
// boundaries — the serving-side reuse of the QuadFlex blocking
// geometry. A quadtree is built over the dataset's points; its leaves
// (in DFS order, which keeps spatially adjacent cells adjacent in the
// ordering) are grouped into `num_shards` contiguous runs of roughly
// equal point counts. A shard therefore owns a union of whole cells:
// ownership of any point is a deterministic tree descent, and "which
// shards can hold a match within radius r" is a conservative
// circle-vs-cell test (geo::CircleIntersectsBox) — a shard not listed
// provably holds no candidate, so scatter fan-out prunes without ever
// losing a pair.
//
// Records without coordinates cannot be placed spatially; they all
// live on shard 0, and queries without coordinates fan out to every
// shard (the cartesian-fallback analogue of the unsharded linker).

#include <cstddef>
#include <memory>
#include <vector>

#include "geo/point.h"
#include "geo/quadtree.h"

namespace skyex::shard {

struct ShardMapOptions {
  /// Quadtree leaf split threshold / depth cap (geo::Quadtree::Options).
  size_t capacity = 64;
  size_t max_depth = 16;
};

class ShardMap {
 public:
  /// Builds the partition over `points` (one per dataset record,
  /// invalid points allowed). `num_shards` is clamped to >= 1.
  ShardMap(std::vector<geo::GeoPoint> points, size_t num_shards,
           ShardMapOptions options = {});

  ShardMap(const ShardMap&) = delete;
  ShardMap& operator=(const ShardMap&) = delete;

  size_t num_shards() const { return num_shards_; }
  size_t num_leaves() const { return leaf_shard_.size(); }

  /// Shard owning `p`: the shard of the quadtree leaf the point routes
  /// to (insert routing — boundary points go to the >=-side cell, and
  /// points outside the root box to a border cell). Invalid points are
  /// owned by shard 0.
  size_t OwnerOf(const geo::GeoPoint& p) const;

  /// Shards that could hold a record within `radius_m` of `p`, owner
  /// included — the scatter target set. Sorted, unique. An invalid `p`
  /// returns every shard (a coordinate-less query must scan the whole
  /// corpus, like the unsharded cartesian fallback).
  std::vector<size_t> ShardsIntersecting(const geo::GeoPoint& p,
                                         double radius_m) const;

  /// Dataset indices owned by each shard, original order preserved
  /// inside each partition; every index appears in exactly one
  /// partition. This is the record placement BootstrapShardedLinkServices
  /// consumes.
  std::vector<std::vector<size_t>> Partitions() const;

  /// Shard of each quadtree leaf, in DFS leaf order (diagnostic).
  const std::vector<size_t>& leaf_shard() const { return leaf_shard_; }

 private:
  std::vector<geo::GeoPoint> points_;
  size_t num_shards_ = 1;
  std::unique_ptr<geo::Quadtree> tree_;  // references points_
  std::vector<size_t> leaf_shard_;
};

}  // namespace skyex::shard

#endif  // SKYEX_SHARD_SHARD_MAP_H_
