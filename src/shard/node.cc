#include "shard/node.h"

#include <chrono>
#include <utility>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "prof/prof.h"

namespace skyex::shard {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardNode::ShardNode(size_t id, std::unique_ptr<serve::LinkService> service,
                     std::vector<size_t> global_of_local,
                     ShardNodeOptions options)
    : id_(id),
      service_(std::move(service)),
      global_of_local_(std::move(global_of_local)),
      options_(options),
      queue_(options.queue_capacity),
      breaker_(options.breaker),
      record_count_(global_of_local_.size()),
      heartbeat_ms_(NowMs()),
      stall_point_("shard." + std::to_string(id) + ".stall"),
      error_point_("shard." + std::to_string(id) + ".error") {}

ShardNode::~ShardNode() { Stop(); }

void ShardNode::Start() {
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void ShardNode::Stop() {
  if (!started_) return;
  queue_.Close();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

serve::PushResult ShardNode::TryEnqueue(ShardJob job) {
  return queue_.TryPush(std::move(job));
}

void ShardNode::Loop() {
  std::vector<ShardJob> batch;
  while (queue_.PopBatch(
      &batch, std::chrono::microseconds(options_.batch_window_us),
      options_.max_batch)) {
    SKYEX_PROF_PHASE(::skyex::prof::Phase::kShard);
    busy_.store(true, std::memory_order_relaxed);
    for (ShardJob& job : batch) {
      heartbeat_ms_.store(NowMs(), std::memory_order_relaxed);
      Process(job);
    }
    heartbeat_ms_.store(NowMs(), std::memory_order_relaxed);
    busy_.store(false, std::memory_order_relaxed);
  }
}

void ShardNode::Process(ShardJob& job) {
  ShardReply reply;
  fault::FaultAction action;
  // Chaos hooks: a stall holds this shard's worker (the router's
  // deadline and breaker must cope), an error fails the job outright.
  if (SKYEX_FAULT_FIRE("shard.stall", &action) ||
      SKYEX_FAULT_FIRE(stall_point_.c_str(), &action)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(action.ms * 1000.0)));
  }
  if (SKYEX_FAULT_FIRE("shard.error", nullptr) ||
      SKYEX_FAULT_FIRE(error_point_.c_str(), nullptr)) {
    SKYEX_COUNTER_INC("shard/job_errors");
    job.reply.set_value(std::move(reply));  // ok = false
    return;
  }
  if (job.cancelled != nullptr &&
      job.cancelled->load(std::memory_order_relaxed)) {
    // The router gave up on this entity; skip the work AND the persist
    // (the global index stays burned — see docs/serving.md).
    SKYEX_COUNTER_INC("shard/jobs_cancelled");
    job.reply.set_value(std::move(reply));  // ok = false
    return;
  }
  core::AddRecordStats stats;
  reply.links = service_->MatchScored(job.entity, job.persist, &stats);
  if (job.persist) {
    global_of_local_.push_back(job.global_index);
    record_count_.fetch_add(1, std::memory_order_relaxed);
  }
  // Report in global indices: the router and clients never see local
  // shard positions.
  for (serve::ScoredLink& link : reply.links) {
    link.record = global_of_local_[link.record];
  }
  reply.extract_us = stats.candidates_us + stats.prefilter_us;
  reply.rank_us = stats.score_us;
  reply.ok = true;
  SKYEX_COUNTER_INC("shard/jobs_done");
  job.reply.set_value(std::move(reply));
}

}  // namespace skyex::shard
