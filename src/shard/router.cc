#include "shard/router.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "core/linker.h"
#include "obs/flight.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace skyex::shard {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Router::Router(std::unique_ptr<ShardMap> map,
               std::vector<std::unique_ptr<ShardNode>> nodes,
               std::string model_text, double radius_m,
               size_t initial_records, RouterOptions options)
    : map_(std::move(map)),
      nodes_(std::move(nodes)),
      model_text_(std::move(model_text)),
      radius_m_(radius_m),
      options_(options),
      next_index_(initial_records),
      seen_opens_(nodes_.size(), 0) {}

Router::~Router() { Stop(); }

void Router::Start() {
  if (started_) return;
  started_ = true;
  for (auto& node : nodes_) node->Start();
  if (options_.watchdog_ms > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

void Router::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  if (watchdog_.joinable()) watchdog_.join();
  for (auto& node : nodes_) node->Stop();
  started_ = false;
}

std::vector<serve::LinkResult> Router::Link(
    const std::vector<data::SpatialEntity>& entities, int deadline_ms,
    serve::ShardPhases* phases) {
  const int64_t deadline_at = deadline_ms > 0 ? NowMs() + deadline_ms : 0;
  std::vector<serve::LinkResult> results;
  results.reserve(entities.size());
  // Entities are sequential: entity i is fully gathered (and persisted
  // on its owner) before entity i+1 scatters, preserving the unsharded
  // linker's intra-batch matching.
  for (const data::SpatialEntity& entity : entities) {
    // --- scatter ---
    const double scatter_start = obs::TraceNowUs();
    const std::vector<size_t> targets =
        map_->ShardsIntersecting(entity.location, radius_m_);
    const size_t owner = map_->OwnerOf(entity.location);
    const size_t global_index =
        next_index_.fetch_add(1, std::memory_order_relaxed);
    auto cancelled = std::make_shared<std::atomic<bool>>(false);
    std::vector<std::pair<size_t, std::future<ShardReply>>> pending;
    pending.reserve(targets.size());
    size_t failed = 0;
    for (size_t s : targets) {
      ShardNode& node = *nodes_[s];
      if (!node.breaker().Admit(NowMs())) {
        ++failed;
        continue;
      }
      ShardJob job;
      job.entity = entity;
      job.global_index = global_index;
      job.persist = s == owner;
      job.cancelled = cancelled;
      std::future<ShardReply> reply = job.reply.get_future();
      if (node.TryEnqueue(std::move(job)) != serve::PushResult::kOk) {
        // Backpressure says nothing about shard health.
        node.breaker().RecordNeutral(NowMs());
        ++failed;
        continue;
      }
      pending.emplace_back(s, std::move(reply));
    }
    if (phases != nullptr) {
      phases->scatter_us += obs::TraceNowUs() - scatter_start;
      phases->shards_touched += static_cast<uint32_t>(targets.size());
    }

    // --- shard_link ---
    const double link_start = obs::TraceNowUs();
    std::vector<serve::ScoredLink> gathered;
    size_t succeeded = 0;
    for (auto& [s, reply_future] : pending) {
      bool timed_out = false;
      if (deadline_at > 0) {
        const int64_t remaining = deadline_at - NowMs();
        timed_out =
            remaining <= 0 ||
            reply_future.wait_for(std::chrono::milliseconds(remaining)) !=
                std::future_status::ready;
      }
      if (timed_out) {
        cancelled->store(true, std::memory_order_relaxed);
        nodes_[s]->breaker().RecordFailure(NowMs());
        SKYEX_COUNTER_INC("shard/scatter_timeouts");
        ++failed;
        continue;
      }
      ShardReply reply = reply_future.get();
      if (!reply.ok) {
        nodes_[s]->breaker().RecordFailure(NowMs());
        ++failed;
        continue;
      }
      nodes_[s]->breaker().RecordSuccess(NowMs());
      ++succeeded;
      if (phases != nullptr) {
        phases->extract_us += reply.extract_us;
        phases->rank_us += reply.rank_us;
      }
      std::move(reply.links.begin(), reply.links.end(),
                std::back_inserter(gathered));
    }
    if (phases != nullptr) {
      phases->shard_link_us += obs::TraceNowUs() - link_start;
      phases->shards_failed += static_cast<uint32_t>(failed);
    }

    // --- gather ---
    const double gather_start = obs::TraceNowUs();
    serve::LinkResult result;
    result.record_index = global_index;
    result.degraded = failed > 0;
    if (succeeded > 0 || failed == 0) {
      std::sort(gathered.begin(), gathered.end(),
                [](const serve::ScoredLink& a, const serve::ScoredLink& b) {
                  return serve::LinkRankBefore(a.score, a.snapshot.id,
                                               a.record, b.score,
                                               b.snapshot.id, b.record);
                });
      result.links.reserve(gathered.size());
      std::vector<const data::SpatialEntity*> cluster;
      cluster.reserve(gathered.size() + 1);
      for (const serve::ScoredLink& link : gathered) {
        result.links.push_back(serve::LinkedRecord{
            link.record, link.snapshot.id, link.snapshot.name,
            std::string(data::SourceName(link.snapshot.source))});
        cluster.push_back(&link.snapshot);
      }
      cluster.push_back(&entity);
      result.merged = core::MergeRecords(cluster);
    } else {
      // Every target lost: nothing to merge beyond the entity itself.
      result.merged = entity;
    }
    SKYEX_COUNTER_INC("serve/link_requests");
    SKYEX_COUNTER_ADD("serve/linked_records", result.links.size());
    if (result.degraded) SKYEX_COUNTER_INC("shard/degraded_results");
    if (phases != nullptr) {
      phases->gather_us += obs::TraceNowUs() - gather_start;
    }
    results.push_back(std::move(result));
  }
  return results;
}

size_t Router::record_count() const {
  size_t total = 0;
  for (const auto& node : nodes_) total += node->record_count();
  return total;
}

bool Router::wedged() const {
  for (const auto& node : nodes_) {
    if (!node->wedged()) return false;
  }
  return true;
}

uint64_t Router::breaker_opens() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->breaker().opens();
  return total;
}

void Router::PublishGauges() const {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (const auto& node : nodes_) {
    const std::string prefix = "shard/" + std::to_string(node->id());
    registry.GetGauge(prefix + "/queue_depth")
        .Set(static_cast<double>(node->queue_depth()));
    registry.GetGauge(prefix + "/records")
        .Set(static_cast<double>(node->record_count()));
    registry.GetGauge(prefix + "/breaker_state")
        .Set(static_cast<double>(node->breaker().state(NowMs())));
    registry.GetGauge(prefix + "/wedged").Set(node->wedged() ? 1.0 : 0.0);
  }
}

void Router::WatchdogLoop() {
  const int64_t interval = std::max<int64_t>(10, options_.watchdog_ms / 4);
  while (!stopping_.load(std::memory_order_relaxed)) {
    for (int64_t slept = 0;
         slept < interval && !stopping_.load(std::memory_order_relaxed);
         slept += 10) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const int64_t now = NowMs();
    for (size_t s = 0; s < nodes_.size(); ++s) {
      ShardNode& node = *nodes_[s];
      const bool active = node.busy() || node.queue_depth() > 0;
      const int64_t age = now - node.heartbeat_ms();
      if (active && age > options_.watchdog_ms) {
        if (!node.wedged()) {
          node.set_wedged(true);
          SKYEX_COUNTER_INC("shard/watchdog_trips");
          SKYEX_LOG_WARN("shard/watchdog", "shard wedged", {"shard", s},
                         {"heartbeat_age_ms", age},
                         {"queue_depth", node.queue_depth()});
          node.breaker().ForceOpen(now);
          obs::FlightRecorder::Global().RecordEvent(
              "shard_wedged", "shard=" + std::to_string(s) +
                                  " heartbeat_age_ms=" + std::to_string(age));
        }
      } else if (node.wedged()) {
        node.set_wedged(false);
        SKYEX_LOG_INFO("shard/watchdog", "shard recovered", {"shard", s},
                       {"heartbeat_age_ms", age});
        obs::FlightRecorder::Global().RecordEvent(
            "shard_recovered", "shard=" + std::to_string(s));
      }
      // Surface per-shard breaker opens as flight events (the sharded
      // analogue of Server::NoteBreakerOpens, sans the stderr dump —
      // a shard storm would flood it).
      const uint64_t opens = node.breaker().opens();
      if (opens > seen_opens_[s]) {
        seen_opens_[s] = opens;
        obs::FlightRecorder::Global().RecordEvent(
            "shard_breaker_open",
            "shard=" + std::to_string(s) + " opens=" + std::to_string(opens));
      }
    }
  }
}

std::unique_ptr<Router> BootstrapRouter(
    data::Dataset dataset, core::SkyExTModel model,
    const core::IncrementalLinkerOptions& linker_options, size_t num_shards,
    const RouterOptions& options, std::string* error) {
  const size_t initial_records = dataset.size();
  auto map = std::make_unique<ShardMap>(dataset.Points(), num_shards,
                                        options.map);
  const std::vector<std::vector<size_t>> partitions = map->Partitions();
  std::string model_text;
  std::vector<std::unique_ptr<serve::LinkService>> services =
      serve::BootstrapShardedLinkServices(std::move(dataset),
                                          std::move(model), linker_options,
                                          partitions, &model_text, error);
  if (services.empty()) return nullptr;
  std::vector<std::unique_ptr<ShardNode>> nodes;
  nodes.reserve(services.size());
  for (size_t s = 0; s < services.size(); ++s) {
    nodes.push_back(std::make_unique<ShardNode>(
        s, std::move(services[s]), partitions[s], options.node));
  }
  SKYEX_LOG_INFO("shard/bootstrap", "sharded backend ready",
                 {"shards", nodes.size()},
                 {"leaves", map->num_leaves()},
                 {"records", initial_records});
  return std::make_unique<Router>(std::move(map), std::move(nodes),
                                  std::move(model_text),
                                  linker_options.radius_m, initial_records,
                                  options);
}

}  // namespace skyex::shard
