#ifndef SKYEX_SHARD_ROUTER_H_
#define SKYEX_SHARD_ROUTER_H_

// Scatter-gather router over geo-partitioned shard nodes — the
// serve::ShardBackend implementation behind `skyex_serve --shards=N`.
//
// Per entity: scatter to every shard whose cells intersect the
// candidate radius (owner always included; coordinate-less entities
// fan out everywhere), wait for the shard replies under the request
// deadline, then gather — concatenate the global-indexed links, rank
// deterministically (score desc, then entity id, then record index;
// the same comparator as the unsharded path), and merge the golden
// record from the gathered snapshots. A shard lost to its breaker,
// queue, deadline, or fault injection degrades the result
// ("degraded":true, partial links) instead of failing the request;
// only when EVERY target is lost does the result fall back to the
// bare entity. Entities of one batch are processed sequentially, so a
// batch's earlier entities are matchable by its later ones — the same
// intra-batch semantics as the unsharded linker.
//
// The router runs its own watchdog: a shard whose worker stops
// heartbeating while work is pending is marked wedged, its breaker is
// forced open (scatter stops paying the deadline for it), and a
// flight-recorder event is logged. Recovery clears the mark.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/incremental.h"
#include "core/skyex_t.h"
#include "data/spatial_entity.h"
#include "serve/shard_api.h"
#include "shard/node.h"
#include "shard/shard_map.h"

namespace skyex::shard {

struct RouterOptions {
  ShardNodeOptions node;  // per-shard queue/batching/breaker knobs
  ShardMapOptions map;
  /// A shard busy (or with queued work) whose heartbeat is older than
  /// this is wedged; 0 disables the watchdog.
  int watchdog_ms = 2000;
};

class Router : public serve::ShardBackend {
 public:
  /// `radius_m` must equal the shards' linker candidate radius — it
  /// bounds the scatter target set. `initial_records` seeds the global
  /// index counter (appends start after the bootstrap dataset).
  Router(std::unique_ptr<ShardMap> map,
         std::vector<std::unique_ptr<ShardNode>> nodes,
         std::string model_text, double radius_m, size_t initial_records,
         RouterOptions options);
  ~Router() override;

  void Start();
  void Stop();

  // serve::ShardBackend:
  std::vector<serve::LinkResult> Link(
      const std::vector<data::SpatialEntity>& entities, int deadline_ms,
      serve::ShardPhases* phases) override;
  size_t record_count() const override;
  size_t num_shards() const override { return nodes_.size(); }
  const std::string& model_text() const override { return model_text_; }
  bool wedged() const override;
  void PublishGauges() const override;
  uint64_t breaker_opens() const override;

  ShardNode& node(size_t s) { return *nodes_[s]; }
  const ShardMap& map() const { return *map_; }

 private:
  void WatchdogLoop();

  std::unique_ptr<ShardMap> map_;
  std::vector<std::unique_ptr<ShardNode>> nodes_;
  const std::string model_text_;
  const double radius_m_;
  const RouterOptions options_;
  std::atomic<size_t> next_index_;
  std::atomic<bool> stopping_{false};
  std::vector<uint64_t> seen_opens_;  // watchdog thread only
  std::thread watchdog_;
  bool started_ = false;
};

/// Builds the full sharded backend: shard map over the dataset's
/// points, global calibration (serve::BootstrapShardedLinkServices),
/// one node per partition. The router is NOT started. nullptr +
/// `error` on failure.
std::unique_ptr<Router> BootstrapRouter(
    data::Dataset dataset, core::SkyExTModel model,
    const core::IncrementalLinkerOptions& linker_options, size_t num_shards,
    const RouterOptions& options, std::string* error);

}  // namespace skyex::shard

#endif  // SKYEX_SHARD_ROUTER_H_
