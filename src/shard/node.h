#ifndef SKYEX_SHARD_NODE_H_
#define SKYEX_SHARD_NODE_H_

// One shard of the sharded serving deployment: a LinkService over its
// partition of the dataset, fronted by its own bounded job queue and a
// dedicated micro-batching worker thread (mirroring the unsharded
// server's admission -> queue -> linker-thread pipeline, one instance
// per shard). The router talks to a node only through TryEnqueue and
// the job's promise — a message-shaped seam, so moving a node out of
// process is a transport change, not an architecture change.
//
// Jobs carry LOCAL match work but reply in GLOBAL record indices: the
// node owns the local->global translation table (original dataset
// positions for bootstrapped records, router-assigned indices for
// appends), touched only by the node thread.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/spatial_entity.h"
#include "serve/breaker.h"
#include "serve/queue.h"
#include "serve/service.h"

namespace skyex::shard {

/// A shard's answer to one scattered entity. `links` carry global
/// record indices and entity snapshots; `ok` is false when the job was
/// skipped (cancelled by the deadline before the node reached it) or
/// failed by fault injection.
struct ShardReply {
  bool ok = false;
  std::vector<serve::ScoredLink> links;
  double extract_us = 0.0;
  double rank_us = 0.0;
};

/// One scattered entity, as enqueued on a shard.
struct ShardJob {
  data::SpatialEntity entity;
  size_t global_index = 0;  // the entity's global index, if persisted
  bool persist = false;     // true on the owner shard only
  std::shared_ptr<std::atomic<bool>> cancelled;  // deadline expiry flag
  std::promise<ShardReply> reply;
};

struct ShardNodeOptions {
  size_t queue_capacity = 128;
  int batch_window_us = 200;  // micro-batching linger
  size_t max_batch = 16;
  serve::CircuitBreakerOptions breaker;
};

class ShardNode {
 public:
  /// `global_of_local[i]` is the global index of the service's local
  /// record i (the bootstrap partition, original dataset positions).
  ShardNode(size_t id, std::unique_ptr<serve::LinkService> service,
            std::vector<size_t> global_of_local, ShardNodeOptions options);
  ~ShardNode();

  ShardNode(const ShardNode&) = delete;
  ShardNode& operator=(const ShardNode&) = delete;

  void Start();
  /// Closes the queue, drains queued jobs, joins the worker.
  void Stop();

  /// Non-blocking admission onto the shard queue.
  serve::PushResult TryEnqueue(ShardJob job);

  size_t id() const { return id_; }
  serve::CircuitBreaker& breaker() { return breaker_; }
  size_t queue_depth() const { return queue_.size(); }
  size_t record_count() const {
    return record_count_.load(std::memory_order_relaxed);
  }
  int64_t heartbeat_ms() const {
    return heartbeat_ms_.load(std::memory_order_relaxed);
  }
  bool busy() const { return busy_.load(std::memory_order_relaxed); }
  bool wedged() const { return wedged_.load(std::memory_order_relaxed); }
  void set_wedged(bool wedged) {
    wedged_.store(wedged, std::memory_order_relaxed);
  }

 private:
  void Loop();
  void Process(ShardJob& job);

  const size_t id_;
  std::unique_ptr<serve::LinkService> service_;
  std::vector<size_t> global_of_local_;  // node thread only
  const ShardNodeOptions options_;
  serve::BatchQueue<ShardJob> queue_;
  serve::CircuitBreaker breaker_;
  std::atomic<size_t> record_count_;
  std::atomic<int64_t> heartbeat_ms_;
  std::atomic<bool> busy_{false};
  std::atomic<bool> wedged_{false};
  // Per-shard fault point names ("shard.<id>.stall" / ".error"); the
  // generic "shard.stall" / "shard.error" points hit every shard.
  const std::string stall_point_;
  const std::string error_point_;
  std::thread thread_;
  bool started_ = false;
};

}  // namespace skyex::shard

#endif  // SKYEX_SHARD_NODE_H_
