#include "shard/shard_map.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace skyex::shard {

ShardMap::ShardMap(std::vector<geo::GeoPoint> points, size_t num_shards,
                   ShardMapOptions options)
    : points_(std::move(points)),
      num_shards_(std::max<size_t>(1, num_shards)) {
  geo::Quadtree::Options tree_options;
  tree_options.capacity = options.capacity;
  tree_options.max_depth = options.max_depth;
  tree_ = std::make_unique<geo::Quadtree>(points_, tree_options);

  // Leaf point counts in DFS order, then contiguous runs of leaves
  // with roughly total/num_shards points each. A run boundary advances
  // once the cumulative count reaches the next 1/num_shards slice, so
  // every shard gets work even when one dense cell dwarfs the rest.
  std::vector<size_t> leaf_counts;
  tree_->ForEachLeaf([&leaf_counts](const std::vector<size_t>& indices,
                                    const geo::BoundingBox&, size_t) {
    leaf_counts.push_back(indices.size());
  });
  const size_t total =
      std::accumulate(leaf_counts.begin(), leaf_counts.end(), size_t{0});
  leaf_shard_.resize(leaf_counts.size(), 0);
  size_t shard = 0;
  size_t cumulative = 0;
  for (size_t leaf = 0; leaf < leaf_counts.size(); ++leaf) {
    leaf_shard_[leaf] = shard;
    cumulative += leaf_counts[leaf];
    while (shard + 1 < num_shards_ && total > 0 &&
           cumulative * num_shards_ >= (shard + 1) * total) {
      ++shard;
    }
  }
}

size_t ShardMap::OwnerOf(const geo::GeoPoint& p) const {
  if (!p.valid) return 0;
  const int ordinal = tree_->RouteLeafOrdinal(p);
  if (ordinal < 0 || static_cast<size_t>(ordinal) >= leaf_shard_.size()) {
    return 0;
  }
  return leaf_shard_[static_cast<size_t>(ordinal)];
}

std::vector<size_t> ShardMap::ShardsIntersecting(const geo::GeoPoint& p,
                                                 double radius_m) const {
  std::vector<size_t> shards;
  if (!p.valid) {
    shards.resize(num_shards_);
    std::iota(shards.begin(), shards.end(), size_t{0});
    return shards;
  }
  for (size_t leaf : tree_->LeafOrdinalsIntersecting(p, radius_m)) {
    shards.push_back(leaf_shard_[leaf]);
  }
  shards.push_back(OwnerOf(p));
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

std::vector<std::vector<size_t>> ShardMap::Partitions() const {
  std::vector<std::vector<size_t>> partitions(num_shards_);
  for (size_t i = 0; i < points_.size(); ++i) {
    partitions[OwnerOf(points_[i])].push_back(i);
  }
  return partitions;
}

}  // namespace skyex::shard
