#ifndef SKYEX_SERVE_NET_H_
#define SKYEX_SERVE_NET_H_

// Thin POSIX TCP helpers for the serving layer: RAII file descriptors,
// listener setup, poll-based accept/connect, and bounded-time reads and
// writes. Everything is blocking-with-deadline — the server uses a
// worker thread pool, not an event loop, so per-call poll() timeouts
// are all the async machinery it needs.

#include <cstdint>
#include <string>
#include <utility>

namespace skyex::serve {

/// Owning file descriptor; closes on destruction. -1 means empty.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Creates a listening IPv4 socket on 127.0.0.1-or-any:`port`
/// (SO_REUSEADDR; `port` 0 picks an ephemeral port). Returns an invalid
/// fd and fills `error` on failure.
UniqueFd ListenTcp(uint16_t port, int backlog, std::string* error);

/// The locally bound port of a socket (0 on error).
uint16_t LocalPort(int fd);

/// Waits up to `timeout_ms` for a pending connection and accepts it.
/// Returns the connection fd, or kAcceptTimeout / kAcceptError.
inline constexpr int kAcceptTimeout = -1;
inline constexpr int kAcceptError = -2;
int AcceptWithTimeout(int listen_fd, int timeout_ms);

/// Connects to host:port (numeric IPv4 or "localhost") within
/// `timeout_ms`. Invalid fd on failure.
UniqueFd ConnectTcp(const std::string& host, uint16_t port, int timeout_ms);

/// Reads up to `len` bytes with a deadline. Returns bytes read (>0),
/// 0 on clean EOF, kIoTimeout, or kIoError.
inline constexpr long kIoTimeout = -1;
inline constexpr long kIoError = -2;
long ReadWithTimeout(int fd, char* buf, size_t len, int timeout_ms);

/// Writes all of `len` bytes with a per-poll deadline (MSG_NOSIGNAL, so
/// a dead peer yields an error instead of SIGPIPE). False on timeout or
/// error.
bool WriteAll(int fd, const char* buf, size_t len, int timeout_ms);

}  // namespace skyex::serve

#endif  // SKYEX_SERVE_NET_H_
