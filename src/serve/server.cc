#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "core/build_info.h"
#include "fault/fault.h"
#include "obs/context.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/process.h"
#include "obs/trace.h"
#include "prof/heap.h"
#include "prof/prof.h"
#include "quality/quality.h"

namespace skyex::serve {

namespace {

const std::vector<double>& BatchSizeBuckets() {
  static const std::vector<double>* buckets = new std::vector<double>{
      1, 2, 4, 8, 16, 32, 64, 128, 256};
  return *buckets;
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Value of `key` in an (unescaped) query string "a=1&b=2"; false when
// the key is absent.
bool QueryParam(const std::string& query, std::string_view key,
                std::string* out) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::string_view part =
        std::string_view(query).substr(pos, end - pos);
    const size_t eq = part.find('=');
    if (eq != std::string_view::npos && part.substr(0, eq) == key) {
      out->assign(part.substr(eq + 1));
      return true;
    }
    pos = end + 1;
  }
  return false;
}

}  // namespace

Server::Server(LinkService* service, ServerOptions options)
    : service_(service),
      options_(options),
      conn_queue_(options.conn_backlog),
      link_queue_(options.queue_depth),
      breaker_(options.breaker) {}

Server::Server(ShardBackend* backend, ServerOptions options)
    : service_(nullptr),
      backend_(backend),
      options_(options),
      conn_queue_(options.conn_backlog),
      link_queue_(options.queue_depth),
      breaker_(options.breaker) {}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  listen_fd_ = ListenTcp(options_.port, options_.listen_backlog, error);
  if (!listen_fd_.valid()) return false;
  port_ = LocalPort(listen_fd_.get());
  last_record_count_.store(backend_ != nullptr ? backend_->record_count()
                                               : service_->record_count(),
                           std::memory_order_relaxed);
  linker_heartbeat_ms_.store(NowMs(), std::memory_order_relaxed);
  started_.store(true);
  listener_ = std::thread(&Server::ListenerLoop, this);
  if (backend_ == nullptr) {
    // Router mode has neither the global linker thread nor the server
    // watchdog: micro-batching and wedge detection live per shard.
    linker_ = std::thread(&Server::LinkerLoop, this);
    if (options_.watchdog_ms > 0) {
      watchdog_ = std::thread(&Server::WatchdogLoop, this);
    }
  }
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back(&Server::WorkerLoop, this);
  }
  if (options_.profile_hz > 0) {
    std::string profile_error;
    if (!prof::CpuProfiler::Global().Start(options_.profile_hz,
                                           &profile_error) &&
        !profile_error.empty()) {
      SKYEX_LOG_WARN("serve/start", "profiler unavailable",
                     {"error", profile_error});
    }
  }
  SKYEX_LOG_INFO("serve/start", "server listening", {"port", port_},
                 {"workers", options_.workers},
                 {"queue_depth", options_.queue_depth},
                 {"batch_window_us", options_.batch_window_us},
                 {"deadline_ms", options_.deadline_ms},
                 {"watchdog_ms", options_.watchdog_ms});
  return true;
}

void Server::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  SKYEX_LOG_INFO("serve/stop", "draining",
                 {"queued_jobs", link_queue_.size()},
                 {"queued_connections", conn_queue_.size()});
  // 1. Stop accepting; the listener closes the listen socket on exit.
  stopping_.store(true);
  listener_.join();
  // 2. Workers: finish in-flight requests, serve connections that were
  //    already accepted, close idle keep-alive connections.
  draining_.store(true);
  conn_queue_.Close();
  for (std::thread& worker : workers_) worker.join();
  // 3. Every admitted link job now has its producer gone; drain the
  //    queue so no promise is left unfulfilled, then stop the linker.
  link_queue_.Close();
  if (linker_.joinable()) linker_.join();
  if (watchdog_.joinable()) watchdog_.join();
  SKYEX_LOG_INFO("serve/stop", "shutdown complete",
                 {"requests", requests_.load()},
                 {"responses_ok", responses_ok_.load()},
                 {"rejected_429", rejected_.load()},
                 {"deadline_expired", deadline_expired_.load()},
                 {"degraded", degraded_.load()},
                 {"breaker_opens", backend_ != nullptr
                                       ? backend_->breaker_opens()
                                       : breaker_.opens()});
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections = connections_.load();
  s.requests = requests_.load();
  s.responses_ok = responses_ok_.load();
  s.responses_client_error = responses_client_error_.load();
  s.rejected = rejected_.load();
  s.shed = shed_.load();
  s.responses_server_error = responses_server_error_.load();
  s.deadline_expired = deadline_expired_.load();
  s.degraded = degraded_.load();
  s.breaker_rejected = breaker_rejected_.load();
  s.breaker_opens =
      backend_ != nullptr ? backend_->breaker_opens() : breaker_.opens();
  s.watchdog_trips = watchdog_trips_.load();
  return s;
}

void Server::ListenerLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = AcceptWithTimeout(listen_fd_.get(), 100);
    if (fd == kAcceptTimeout) continue;
    if (fd == kAcceptError) break;
    connections_.fetch_add(1, std::memory_order_relaxed);
    SKYEX_COUNTER_INC("serve/connections");
    if (conn_queue_.TryPush(UniqueFd(fd)) != PushResult::kOk) {
      // Connection backlog full: shed load at the door (the fd closes
      // on UniqueFd destruction, clients see a reset).
      SKYEX_COUNTER_INC("serve/connections_shed");
    }
  }
  listen_fd_.Reset();
}

void Server::WorkerLoop() {
  std::vector<UniqueFd> batch;
  while (conn_queue_.PopBatch(&batch, std::chrono::microseconds(0), 1)) {
    for (UniqueFd& fd : batch) ServeConnection(std::move(fd));
  }
}

void Server::ServeConnection(UniqueFd fd) {
  SKYEX_SPAN("serve/connection");
  std::string leftover;
  HttpReadOptions read_options;
  read_options.timeout_ms = options_.read_timeout_ms;
  read_options.max_body = options_.max_body_bytes;
  read_options.abort_idle = &draining_;
  for (;;) {
    HttpRequest request;
    const ReadStatus status =
        ReadHttpRequest(fd.get(), &request, &leftover, read_options);
    if (status == ReadStatus::kClosed || status == ReadStatus::kError) {
      return;
    }
    if (status != ReadStatus::kOk) {
      HttpResponse response;
      switch (status) {
        case ReadStatus::kTooLarge:
          response = ErrorResponse(413, "request body too large");
          SKYEX_COUNTER_INC("serve/oversized_413");
          break;
        case ReadStatus::kTimeout:
          response = ErrorResponse(408, "request read timed out");
          break;
        default:
          response = ErrorResponse(400, "malformed HTTP request");
          break;
      }
      responses_client_error_.fetch_add(1, std::memory_order_relaxed);
      WriteHttpResponse(fd.get(), response, /*close=*/true,
                        options_.write_timeout_ms);
      return;  // framing is unreliable now; drop the connection
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    SKYEX_COUNTER_INC("serve/http_requests");
    const double start_us = obs::TraceNowUs();

    // Request id: adopt the client's X-Request-Id (hex ids parse
    // exactly so our own ids round-trip; anything else is hashed) or
    // mint one. The original header value is echoed back verbatim;
    // internally the 64-bit id keys logs, the flight recorder and
    // exemplars.
    uint64_t request_id = 0;
    std::string request_id_text;
    const auto rid_header = request.headers.find("x-request-id");
    if (rid_header != request.headers.end() && !rid_header->second.empty()) {
      request_id = obs::RequestIdFromText(rid_header->second);
      request_id_text = rid_header->second;
    } else {
      request_id = obs::NewRequestId();
      request_id_text = obs::FormatRequestId(request_id);
    }
    obs::ScopedTraceContext context_scope(
        obs::TraceContext{request_id, 0});

    obs::RequestTimeline timeline;
    timeline.request_id = request_id;
    timeline.start_us = start_us;
    timeline.SetEndpoint(request.path);

    HttpResponse response;
    {
      SKYEX_SPAN("serve/handle_request");
      // After the context scope, so the samples carry this request id.
      SKYEX_PROF_PHASE(::skyex::prof::Phase::kServe);
      response = Dispatch(request, &timeline);
    }
    response.extra_headers.emplace_back("X-Request-Id", request_id_text);
    if (response.status < 300) {
      responses_ok_.fetch_add(1, std::memory_order_relaxed);
    } else if (response.status == 429) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
    } else if (response.status == 503) {
      // Deliberate backpressure — breaker open, deadline shed, drain,
      // wedged health check — not a server fault.
      shed_.fetch_add(1, std::memory_order_relaxed);
    } else if (response.status < 500) {
      responses_client_error_.fetch_add(1, std::memory_order_relaxed);
    } else {
      responses_server_error_.fetch_add(1, std::memory_order_relaxed);
    }
    const bool close =
        !request.KeepAlive() || draining_.load(std::memory_order_relaxed);
    const bool written = WriteHttpResponse(fd.get(), response, close,
                                           options_.write_timeout_ms);
    timeline.status = response.status;
    timeline.total_us = obs::TraceNowUs() - start_us;
    obs::FlightRecorder::Global().Record(timeline);
    SKYEX_HISTOGRAM_OBSERVE_US_EX("serve/request_latency_us",
                                  timeline.total_us, request_id);
    if (!written || close) return;
  }
}

HttpResponse Server::Dispatch(const HttpRequest& request,
                              obs::RequestTimeline* timeline) {
  if (request.path == "/v1/link" || request.path == "/v1/link_batch") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST");
    }
    return HandleLink(request, request.path == "/v1/link_batch", timeline);
  }
  if (request.path == "/healthz") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    // A wedged linker likely holds the service mutex, so /healthz must
    // not call record_count() then — it reports the cached count.
    // Router mode counts records from per-shard atomics (mutex-free)
    // and is wedged only when EVERY shard is.
    const bool wedged = this->wedged();
    json::Writer writer;
    writer.BeginObject();
    writer.Key("status").String(
        wedged ? "wedged"
               : draining_.load(std::memory_order_relaxed) ? "draining"
                                                           : "ok");
    if (backend_ != nullptr) {
      writer.Key("records").Uint(backend_->record_count());
      writer.Key("queue_depth").Uint(link_queue_.size());
      writer.Key("breaker").String("sharded");
      writer.Key("shards").Uint(backend_->num_shards());
    } else {
      writer.Key("records").Uint(
          wedged ? last_record_count_.load(std::memory_order_relaxed)
                 : service_->record_count());
      writer.Key("queue_depth").Uint(link_queue_.size());
      writer.Key("breaker").String(breaker_.StateName(NowMs()));
    }
    writer.EndObject();
    HttpResponse response;
    if (wedged) response.status = 503;
    response.body = writer.Take();
    return response;
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    std::string format;
    QueryParam(request.query, "format", &format);
    // Refresh the pull-style gauges once per scrape: process vitals
    // (RSS, fds, uptime), per-zone heap attribution, and (router mode)
    // the per-shard shard/<id>/... gauges.
    obs::PublishProcessGauges();
    prof::PublishHeapGauges();
    if (backend_ != nullptr) backend_->PublishGauges();
#if !defined(SKYEX_OBS_DISABLED)
    quality::Runtime::Global().PublishMetrics();
#endif
    std::ostringstream out;
    HttpResponse response;
    if (format == "prometheus") {
      obs::MetricsRegistry::Global().WritePrometheus(out);
      response.content_type = "text/plain; version=0.0.4";
    } else {
      obs::MetricsRegistry::Global().WriteJson(out);
    }
    response.body = out.str();
    return response;
  }
  if (request.path == "/debug/flight") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    std::ostringstream out;
    obs::FlightRecorder::Global().WriteJson(out);
    HttpResponse response;
    response.body = out.str();
    return response;
  }
  if (request.path == "/debug/trace") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return HandleDebugTrace(request);
  }
  if (request.path == "/debug/pprof/profile") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return HandleProfile(request);
  }
  if (request.path == "/debug/pprof/heap") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    std::ostringstream out;
    prof::WriteHeapProfileJson(out);
    HttpResponse response;
    response.body = out.str();
    return response;
  }
  if (request.path == "/model") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = backend_ != nullptr ? backend_->model_text()
                                        : service_->model_text();
    return response;
  }
  if (request.path == "/buildz") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    HttpResponse response;
    response.body = core::BuildInfoJson();
    return response;
  }
  if (request.path == "/debug/quality") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    std::ostringstream out;
    quality::Runtime::Global().WriteDebugJson(out);
    HttpResponse response;
    response.body = out.str();
    return response;
  }
  return ErrorResponse(404, "no such endpoint");
}

HttpResponse Server::LinkResponse(const std::vector<LinkResult>& results,
                                  bool batch,
                                  obs::RequestTimeline* timeline) {
  const double serialize_start = obs::TraceNowUs();
  const std::string rid = obs::FormatRequestId(timeline->request_id);
  json::Writer writer;
  if (batch) {
    writer.BeginObject();
    writer.Key("request_id").String(rid);
    writer.Key("results").BeginArray();
    for (const LinkResult& result : results) {
      WriteLinkResultJson(&writer, result);
    }
    writer.EndArray();
    writer.EndObject();
  } else {
    WriteLinkResultJson(&writer, results[0], &rid);
  }
  HttpResponse response;
  response.body = writer.Take();
  timeline->serialize_us = obs::TraceNowUs() - serialize_start;
  return response;
}

HttpResponse Server::DegradedResponse(
    const std::vector<data::SpatialEntity>& entities, bool batch,
    obs::RequestTimeline* timeline) {
  degraded_.fetch_add(1, std::memory_order_relaxed);
  SKYEX_COUNTER_INC("serve/degraded_responses");
  timeline->degraded = true;
  return LinkResponse(service_->LinkDegraded(entities), batch, timeline);
}

HttpResponse Server::HandleDebugTrace(const HttpRequest& request) {
  std::string seconds_text;
  int seconds = 1;
  if (QueryParam(request.query, "seconds", &seconds_text)) {
    try {
      seconds = std::stoi(seconds_text);
    } catch (...) {
      return ErrorResponse(400, "seconds must be an integer");
    }
  }
  seconds = std::clamp(seconds, 1, 10);

  // Enable the collector for the window, then export only events that
  // started inside it. Snapshot() is safe while pool workers and the
  // linker are live (see trace.h), so nothing pauses. The window
  // occupies this I/O worker; concurrent requests proceed on the
  // others. If tracing was already on (e.g. --trace-out), leave it on
  // and don't reset, so the long-running collection is untouched.
  auto& collector = obs::TraceCollector::Global();
  const bool was_enabled = collector.enabled();
  const double window_start = obs::TraceNowUs();
  collector.SetEnabled(true);
  for (int slept_ms = 0;
       slept_ms < seconds * 1000 &&
       !draining_.load(std::memory_order_relaxed);
       slept_ms += 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!was_enabled) collector.SetEnabled(false);

  std::vector<obs::TraceEvent> events = collector.Snapshot();
  events.erase(std::remove_if(events.begin(), events.end(),
                              [window_start](const obs::TraceEvent& e) {
                                return e.ts_us < window_start;
                              }),
               events.end());
  std::ostringstream out;
  obs::WriteChromeTraceEvents(out, events);
  HttpResponse response;
  response.body = out.str();
  return response;
}

HttpResponse Server::HandleProfile(const HttpRequest& request) {
  auto& profiler = prof::CpuProfiler::Global();
  if (!profiler.running()) {
    return ErrorResponse(
        503, "profiler not running (start skyex_serve with --profile-hz)");
  }
  std::string seconds_text;
  int seconds = 2;
  if (QueryParam(request.query, "seconds", &seconds_text)) {
    try {
      seconds = std::stoi(seconds_text);
    } catch (...) {
      return ErrorResponse(400, "seconds must be an integer");
    }
  }
  seconds = std::clamp(seconds, 1, 30);
  std::string format;
  QueryParam(request.query, "format", &format);

  // Window collection: discard whatever accumulated since the last
  // drain, sleep the window out on this I/O worker (concurrent
  // requests proceed on the others; draining cuts the window short),
  // then drain exactly the window's samples. Drain() is safe while the
  // handlers keep writing — see prof/prof.h.
  profiler.DiscardPending();
  for (int slept_ms = 0;
       slept_ms < seconds * 1000 &&
       !draining_.load(std::memory_order_relaxed);
       slept_ms += 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const prof::Profile profile = profiler.Drain();

  HttpResponse response;
  if (format == "json") {
    std::ostringstream out;
    prof::WriteProfileJson(out, profile);
    response.body = out.str();
  } else {
    response.content_type = "text/plain";
    response.body = prof::CollapseProfile(profile);
  }
  return response;
}

HttpResponse Server::ShedResponse(const std::string& message) {
  HttpResponse response = ErrorResponse(503, message);
  response.extra_headers.emplace_back(
      "Retry-After", std::to_string(breaker_.RetryAfterSeconds()));
  return response;
}

HttpResponse Server::HandleLink(const HttpRequest& request, bool batch,
                                obs::RequestTimeline* timeline) {
  std::string error;
  LinkJob job;
  {
    SKYEX_SPAN("serve/parse_request");
    const double parse_start = obs::TraceNowUs();
    struct ParseTimer {
      double start;
      obs::RequestTimeline* timeline;
      ~ParseTimer() {
        timeline->parse_us = obs::TraceNowUs() - start;
      }
    } parse_timer{parse_start, timeline};
    const auto parsed = obs::json::Parse(request.body, &error);
    if (!parsed.has_value()) {
      SKYEX_COUNTER_INC("serve/bad_json_400");
      return ErrorResponse(400, "invalid JSON: " + error);
    }
    if (batch) {
      const obs::json::Value* entities = parsed->Find("entities");
      if (entities == nullptr || !entities->is_array()) {
        return ErrorResponse(400, "body needs an array field 'entities'");
      }
      if (entities->array_v.empty()) {
        return ErrorResponse(400, "'entities' must not be empty");
      }
      if (entities->array_v.size() > options_.max_batch_entities) {
        return ErrorResponse(
            400, "'entities' exceeds the per-request cap of " +
                     std::to_string(options_.max_batch_entities));
      }
      job.entities.resize(entities->array_v.size());
      for (size_t i = 0; i < entities->array_v.size(); ++i) {
        if (!ParseEntityJson(entities->array_v[i], &job.entities[i],
                             &error)) {
          return ErrorResponse(
              400, "entities[" + std::to_string(i) + "]: " + error);
        }
      }
    } else {
      const obs::json::Value* entity = parsed->Find("entity");
      if (entity == nullptr) {
        return ErrorResponse(400, "body needs an object field 'entity'");
      }
      job.entities.resize(1);
      if (!ParseEntityJson(*entity, &job.entities[0], &error)) {
        return ErrorResponse(400, error);
      }
    }
  }

  // Injected allocation failure at the admission boundary: the request
  // is well-formed but the server refuses to take on the work.
  if (SKYEX_FAULT_FIRE("serve.alloc", nullptr)) {
    SKYEX_COUNTER_INC("serve/alloc_failures");
    return ShedResponse("out of memory (injected)");
  }

  // Router mode: no global link queue or server breaker — admission,
  // batching, breakers and degradation all happen per shard behind the
  // backend. An unhealthy shard degrades results rather than shedding
  // the whole request, so the wedged pre-check is skipped too.
  if (backend_ != nullptr) {
    return HandleLinkSharded(std::move(job.entities), batch, timeline);
  }

  // A wedged linker cannot serve the full path; don't enqueue work that
  // would only expire. The watchdog clears the flag on recovery.
  if (wedged_.load(std::memory_order_relaxed)) {
    if (options_.degraded_fallback) {
      return DegradedResponse(job.entities, batch, timeline);
    }
    return ShedResponse("linker wedged");
  }

  if (!breaker_.Admit(NowMs())) {
    breaker_rejected_.fetch_add(1, std::memory_order_relaxed);
    SKYEX_COUNTER_INC("serve/breaker_rejected");
    return ShedResponse("circuit breaker open");
  }

  // Keep a copy for the degraded path: the job itself is moved into the
  // queue and may still be consumed by the linker after we give up.
  std::vector<data::SpatialEntity> fallback_entities;
  if (options_.deadline_ms > 0 && options_.degraded_fallback) {
    fallback_entities = job.entities;
  }

  job.enqueue_us = obs::TraceNowUs();
  job.request_id = timeline->request_id;
  auto phases = std::make_shared<LinkPhases>();
  job.phases = phases;
  auto cancelled = std::make_shared<std::atomic<bool>>(false);
  job.cancelled = cancelled;
  std::future<std::vector<LinkResult>> future = job.done.get_future();
  const PushResult pushed = link_queue_.TryPush(std::move(job));
  SKYEX_GAUGE_SET("serve/queue_depth",
                  static_cast<double>(link_queue_.size()));
  if (pushed == PushResult::kFull) {
    // Backpressure, not linker failure: release a half-open probe slot
    // without biasing the breaker window.
    breaker_.RecordNeutral(NowMs());
    SKYEX_COUNTER_INC("serve/rejected_429");
    HttpResponse response = ErrorResponse(429, "link queue is full");
    response.extra_headers.emplace_back(
        "Retry-After", std::to_string(options_.retry_after_s));
    return response;
  }
  if (pushed == PushResult::kClosed) {
    breaker_.RecordNeutral(NowMs());
    return ErrorResponse(503, "server is draining");
  }

  if (options_.deadline_ms > 0) {
    // Injected clock skew eats into the request's budget, as a skewed
    // or stepped clock would.
    double skew_ms = 0.0;
    fault::FaultAction skew_action;
    if (SKYEX_FAULT_FIRE("serve.clock_skew", &skew_action)) {
      skew_ms = skew_action.ms;
    }
    const auto wait = std::chrono::milliseconds(std::max<int64_t>(
        0, options_.deadline_ms - static_cast<int64_t>(skew_ms)));
    std::future_status ready;
    {
      SKYEX_SPAN("serve/queue_wait");
      ready = future.wait_for(wait);
    }
    if (ready != std::future_status::ready) {
      cancelled->store(true, std::memory_order_relaxed);
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      SKYEX_COUNTER_INC("serve/deadline_expired");
      breaker_.RecordFailure(NowMs());
      NoteBreakerOpens();
      if (options_.degraded_fallback) {
        return DegradedResponse(fallback_entities, batch, timeline);
      }
      return ShedResponse("deadline exceeded");
    }
    std::vector<LinkResult> results = future.get();
    breaker_.RecordSuccess(NowMs());
    timeline->queue_wait_us = phases->queue_wait_us;
    timeline->batch_wait_us = phases->batch_wait_us;
    timeline->extract_us = phases->extract_us;
    timeline->prefilter_us = phases->prefilter_us;
    timeline->rank_us = phases->rank_us;
    timeline->batch_size = phases->batch_size;
    timeline->prefilter_dropped = phases->prefilter_dropped;
    timeline->lru_hits = phases->lru_hits;
    timeline->lru_misses = phases->lru_misses;
    return LinkResponse(results, batch, timeline);
  }

  std::vector<LinkResult> results;
  {
    SKYEX_SPAN("serve/queue_wait");
    results = future.get();
  }
  breaker_.RecordSuccess(NowMs());
  timeline->queue_wait_us = phases->queue_wait_us;
  timeline->batch_wait_us = phases->batch_wait_us;
  timeline->extract_us = phases->extract_us;
  timeline->prefilter_us = phases->prefilter_us;
  timeline->rank_us = phases->rank_us;
  timeline->batch_size = phases->batch_size;
  timeline->prefilter_dropped = phases->prefilter_dropped;
  timeline->lru_hits = phases->lru_hits;
  timeline->lru_misses = phases->lru_misses;
  return LinkResponse(results, batch, timeline);
}

HttpResponse Server::HandleLinkSharded(
    std::vector<data::SpatialEntity> entities, bool batch,
    obs::RequestTimeline* timeline) {
  SKYEX_SPAN("serve/link_sharded");
  ShardPhases phases;
  std::vector<LinkResult> results =
      backend_->Link(entities, options_.deadline_ms, &phases);
  timeline->extract_us = phases.extract_us;
  timeline->rank_us = phases.rank_us;
  timeline->scatter_us = phases.scatter_us;
  timeline->shard_link_us = phases.shard_link_us;
  timeline->gather_us = phases.gather_us;
  timeline->shards_touched = phases.shards_touched;
  timeline->shards_failed = phases.shards_failed;
  timeline->batch_size = static_cast<uint32_t>(entities.size());
  bool degraded = false;
  for (const LinkResult& result : results) degraded |= result.degraded;
  if (degraded) {
    degraded_.fetch_add(1, std::memory_order_relaxed);
    SKYEX_COUNTER_INC("serve/degraded_responses");
    timeline->degraded = true;
  }
  return LinkResponse(results, batch, timeline);
}

void Server::LinkerLoop() {
  std::vector<LinkJob> jobs;
  while (link_queue_.PopBatch(
      &jobs, std::chrono::microseconds(options_.batch_window_us),
      options_.max_batch)) {
    const double pop_us = obs::TraceNowUs();
    // Attribute the linker's work (log lines, pool tasks) to the first
    // live job of the batch — batches are usually size 1, and a single
    // representative id beats no id for "what was the linker doing".
    obs::TraceContext batch_context;
    for (const LinkJob& job : jobs) {
      if (job.cancelled == nullptr ||
          !job.cancelled->load(std::memory_order_relaxed)) {
        batch_context = obs::TraceContext{job.request_id, 0};
        break;
      }
    }
    obs::ScopedTraceContext context_scope(batch_context);
    // Linker glue samples as serve; LinkMany below re-tags its own
    // blocking/extraction/ranking stretches.
    SKYEX_PROF_PHASE(::skyex::prof::Phase::kServe);
    linker_busy_.store(true, std::memory_order_relaxed);
    linker_heartbeat_ms_.store(NowMs(), std::memory_order_relaxed);
    // Injected wedge: the stall happens while busy with the heartbeat
    // frozen, exactly what a deadlocked or livelocked linker looks like
    // to the watchdog.
    fault::FaultAction stall;
    if (SKYEX_FAULT_FIRE("linker.stall", &stall)) {
      SKYEX_LOG_WARN("serve/linker", "injected stall", {"ms", stall.ms});
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(stall.ms));
    }
    SKYEX_GAUGE_SET("serve/queue_depth",
                    static_cast<double>(link_queue_.size()));
    std::vector<data::SpatialEntity> entities;
    std::vector<size_t> offsets;  // start of each job's slice
    {
      SKYEX_SPAN("serve/batch_assembly");
      const double now_us = obs::TraceNowUs();
      size_t total = 0;
      size_t skipped = 0;
      offsets.reserve(jobs.size());
      for (const LinkJob& job : jobs) total += job.entities.size();
      entities.reserve(total);
      for (LinkJob& job : jobs) {
        offsets.push_back(entities.size());
        // A cancelled job's caller gave up at its deadline; skipping it
        // keeps the abandoned request from mutating the dataset. Its
        // slice stays empty.
        if (job.cancelled != nullptr &&
            job.cancelled->load(std::memory_order_relaxed)) {
          ++skipped;
          continue;
        }
        if (job.phases != nullptr) {
          job.phases->queue_wait_us = pop_us - job.enqueue_us;
        }
        SKYEX_HISTOGRAM_OBSERVE_US("serve/queue_wait_us",
                                   now_us - job.enqueue_us);
        for (data::SpatialEntity& e : job.entities) {
          entities.push_back(std::move(e));
        }
      }
      if (skipped > 0) {
        SKYEX_COUNTER_ADD("serve/jobs_skipped_cancelled", skipped);
      }
      SKYEX_HISTOGRAM_OBSERVE("serve/batch_size",
                              static_cast<double>(entities.size()),
                              BatchSizeBuckets());
    }

    std::vector<LinkResult> results;
    LinkBatchStats batch_stats;
    const double link_start_us = obs::TraceNowUs();
    if (!entities.empty()) {
      // Base tag for the linking pass: acceptance + golden-record time
      // samples as ranking; candidate scan and feature extraction
      // re-tag themselves inside (core/incremental.cc).
      SKYEX_PROF_PHASE(::skyex::prof::Phase::kRanking);
      results = service_->LinkMany(entities, &batch_stats);
      if (!results.empty()) {
        last_record_count_.store(results.back().record_index + 1,
                                 std::memory_order_relaxed);
      }
    }
    for (LinkJob& job : jobs) {
      if (job.phases == nullptr) continue;
      job.phases->batch_wait_us = link_start_us - pop_us;
      job.phases->extract_us = batch_stats.extract_us;
      job.phases->prefilter_us = batch_stats.prefilter_us;
      job.phases->rank_us = batch_stats.rank_us;
      job.phases->batch_size = static_cast<uint32_t>(entities.size());
      job.phases->prefilter_dropped = batch_stats.prefilter_dropped;
      job.phases->lru_hits = batch_stats.lru_hits;
      job.phases->lru_misses = batch_stats.lru_misses;
    }

    for (size_t j = 0; j < jobs.size(); ++j) {
      const size_t begin = offsets[j];
      const size_t end =
          j + 1 < jobs.size() ? offsets[j + 1] : results.size();
      std::vector<LinkResult> slice(
          std::make_move_iterator(results.begin() + begin),
          std::make_move_iterator(results.begin() + end));
      jobs[j].done.set_value(std::move(slice));
    }
    linker_heartbeat_ms_.store(NowMs(), std::memory_order_relaxed);
    linker_busy_.store(false, std::memory_order_relaxed);
  }
}

void Server::WatchdogLoop() {
  const int64_t interval =
      std::max<int64_t>(10, options_.watchdog_ms / 4);
  while (!stopping_.load(std::memory_order_relaxed)) {
    for (int64_t slept = 0;
         slept < interval && !stopping_.load(std::memory_order_relaxed);
         slept += 10) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const int64_t now = NowMs();
    const bool active = linker_busy_.load(std::memory_order_relaxed) ||
                        link_queue_.size() > 0;
    const int64_t age =
        now - linker_heartbeat_ms_.load(std::memory_order_relaxed);
    if (active && age > options_.watchdog_ms) {
      if (!wedged_.exchange(true, std::memory_order_relaxed)) {
        watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
        SKYEX_COUNTER_INC("serve/watchdog_trips");
        SKYEX_GAUGE_SET("serve/wedged", 1.0);
        SKYEX_LOG_WARN("serve/watchdog", "linker wedged",
                       {"heartbeat_age_ms", age},
                       {"queue_depth", link_queue_.size()});
        breaker_.ForceOpen(now);
        obs::FlightRecorder::Global().RecordEvent(
            "watchdog_trip", "heartbeat_age_ms=" + std::to_string(age) +
                                 " queue_depth=" +
                                 std::to_string(link_queue_.size()));
        obs::FlightRecorder::Global().DumpToStderr("watchdog_trip");
        NoteBreakerOpens();
      }
    } else if (wedged_.exchange(false, std::memory_order_relaxed)) {
      SKYEX_GAUGE_SET("serve/wedged", 0.0);
      SKYEX_LOG_INFO("serve/watchdog", "linker recovered",
                     {"heartbeat_age_ms", age});
    }
  }
}

void Server::NoteBreakerOpens() {
  const uint64_t opens = breaker_.opens();
  uint64_t seen = flight_seen_opens_.load(std::memory_order_relaxed);
  while (seen < opens) {
    if (flight_seen_opens_.compare_exchange_weak(
            seen, opens, std::memory_order_relaxed)) {
      obs::FlightRecorder::Global().RecordEvent(
          "breaker_open", "opens=" + std::to_string(opens));
      obs::FlightRecorder::Global().DumpToStderr("breaker_open");
      return;
    }
  }
}

HttpResponse Server::ErrorResponse(int status,
                                   const std::string& message) const {
  json::Writer writer;
  writer.BeginObject();
  writer.Key("error").String(message);
  writer.Key("status").Int(status);
  writer.EndObject();
  HttpResponse response;
  response.status = status;
  response.body = writer.Take();
  return response;
}

}  // namespace skyex::serve
