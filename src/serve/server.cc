#include "serve/server.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace skyex::serve {

namespace {

const std::vector<double>& BatchSizeBuckets() {
  static const std::vector<double>* buckets = new std::vector<double>{
      1, 2, 4, 8, 16, 32, 64, 128, 256};
  return *buckets;
}

}  // namespace

Server::Server(LinkService* service, ServerOptions options)
    : service_(service),
      options_(options),
      conn_queue_(options.conn_backlog),
      link_queue_(options.queue_depth) {}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  listen_fd_ = ListenTcp(options_.port, options_.listen_backlog, error);
  if (!listen_fd_.valid()) return false;
  port_ = LocalPort(listen_fd_.get());
  started_.store(true);
  listener_ = std::thread(&Server::ListenerLoop, this);
  linker_ = std::thread(&Server::LinkerLoop, this);
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back(&Server::WorkerLoop, this);
  }
  SKYEX_LOG_INFO("serve/start", "server listening", {"port", port_},
                 {"workers", options_.workers},
                 {"queue_depth", options_.queue_depth},
                 {"batch_window_us", options_.batch_window_us});
  return true;
}

void Server::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  SKYEX_LOG_INFO("serve/stop", "draining",
                 {"queued_jobs", link_queue_.size()},
                 {"queued_connections", conn_queue_.size()});
  // 1. Stop accepting; the listener closes the listen socket on exit.
  stopping_.store(true);
  listener_.join();
  // 2. Workers: finish in-flight requests, serve connections that were
  //    already accepted, close idle keep-alive connections.
  draining_.store(true);
  conn_queue_.Close();
  for (std::thread& worker : workers_) worker.join();
  // 3. Every admitted link job now has its producer gone; drain the
  //    queue so no promise is left unfulfilled, then stop the linker.
  link_queue_.Close();
  linker_.join();
  SKYEX_LOG_INFO("serve/stop", "shutdown complete",
                 {"requests", requests_.load()},
                 {"responses_ok", responses_ok_.load()},
                 {"rejected_429", rejected_.load()});
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections = connections_.load();
  s.requests = requests_.load();
  s.responses_ok = responses_ok_.load();
  s.responses_client_error = responses_client_error_.load();
  s.rejected = rejected_.load();
  s.responses_server_error = responses_server_error_.load();
  return s;
}

void Server::ListenerLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = AcceptWithTimeout(listen_fd_.get(), 100);
    if (fd == kAcceptTimeout) continue;
    if (fd == kAcceptError) break;
    connections_.fetch_add(1, std::memory_order_relaxed);
    SKYEX_COUNTER_INC("serve/connections");
    if (conn_queue_.TryPush(UniqueFd(fd)) != PushResult::kOk) {
      // Connection backlog full: shed load at the door (the fd closes
      // on UniqueFd destruction, clients see a reset).
      SKYEX_COUNTER_INC("serve/connections_shed");
    }
  }
  listen_fd_.Reset();
}

void Server::WorkerLoop() {
  std::vector<UniqueFd> batch;
  while (conn_queue_.PopBatch(&batch, std::chrono::microseconds(0), 1)) {
    for (UniqueFd& fd : batch) ServeConnection(std::move(fd));
  }
}

void Server::ServeConnection(UniqueFd fd) {
  SKYEX_SPAN("serve/connection");
  std::string leftover;
  HttpReadOptions read_options;
  read_options.timeout_ms = options_.read_timeout_ms;
  read_options.max_body = options_.max_body_bytes;
  read_options.abort_idle = &draining_;
  for (;;) {
    HttpRequest request;
    const ReadStatus status =
        ReadHttpRequest(fd.get(), &request, &leftover, read_options);
    if (status == ReadStatus::kClosed || status == ReadStatus::kError) {
      return;
    }
    if (status != ReadStatus::kOk) {
      HttpResponse response;
      switch (status) {
        case ReadStatus::kTooLarge:
          response = ErrorResponse(413, "request body too large");
          SKYEX_COUNTER_INC("serve/oversized_413");
          break;
        case ReadStatus::kTimeout:
          response = ErrorResponse(408, "request read timed out");
          break;
        default:
          response = ErrorResponse(400, "malformed HTTP request");
          break;
      }
      responses_client_error_.fetch_add(1, std::memory_order_relaxed);
      WriteHttpResponse(fd.get(), response, /*close=*/true,
                        options_.write_timeout_ms);
      return;  // framing is unreliable now; drop the connection
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    SKYEX_COUNTER_INC("serve/http_requests");
    const double start_us = obs::TraceNowUs();
    HttpResponse response;
    {
      SKYEX_SPAN("serve/handle_request");
      response = Dispatch(request);
    }
    if (response.status < 300) {
      responses_ok_.fetch_add(1, std::memory_order_relaxed);
    } else if (response.status == 429) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
    } else if (response.status < 500) {
      responses_client_error_.fetch_add(1, std::memory_order_relaxed);
    } else {
      responses_server_error_.fetch_add(1, std::memory_order_relaxed);
    }
    const bool close =
        !request.KeepAlive() || draining_.load(std::memory_order_relaxed);
    const bool written = WriteHttpResponse(fd.get(), response, close,
                                           options_.write_timeout_ms);
    SKYEX_HISTOGRAM_OBSERVE_US("serve/request_latency_us",
                               obs::TraceNowUs() - start_us);
    if (!written || close) return;
  }
}

HttpResponse Server::Dispatch(const HttpRequest& request) {
  if (request.path == "/v1/link" || request.path == "/v1/link_batch") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST");
    }
    return HandleLink(request, request.path == "/v1/link_batch");
  }
  if (request.path == "/healthz") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    json::Writer writer;
    writer.BeginObject();
    writer.Key("status").String(
        draining_.load(std::memory_order_relaxed) ? "draining" : "ok");
    writer.Key("records").Uint(service_->record_count());
    writer.Key("queue_depth").Uint(link_queue_.size());
    writer.EndObject();
    HttpResponse response;
    response.body = writer.Take();
    return response;
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    std::ostringstream out;
    obs::MetricsRegistry::Global().WriteJson(out);
    HttpResponse response;
    response.body = out.str();
    return response;
  }
  if (request.path == "/model") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = service_->model_text();
    return response;
  }
  return ErrorResponse(404, "no such endpoint");
}

HttpResponse Server::HandleLink(const HttpRequest& request, bool batch) {
  std::string error;
  LinkJob job;
  {
    SKYEX_SPAN("serve/parse_request");
    const auto parsed = obs::json::Parse(request.body, &error);
    if (!parsed.has_value()) {
      SKYEX_COUNTER_INC("serve/bad_json_400");
      return ErrorResponse(400, "invalid JSON: " + error);
    }
    if (batch) {
      const obs::json::Value* entities = parsed->Find("entities");
      if (entities == nullptr || !entities->is_array()) {
        return ErrorResponse(400, "body needs an array field 'entities'");
      }
      if (entities->array_v.empty()) {
        return ErrorResponse(400, "'entities' must not be empty");
      }
      if (entities->array_v.size() > options_.max_batch_entities) {
        return ErrorResponse(
            400, "'entities' exceeds the per-request cap of " +
                     std::to_string(options_.max_batch_entities));
      }
      job.entities.resize(entities->array_v.size());
      for (size_t i = 0; i < entities->array_v.size(); ++i) {
        if (!ParseEntityJson(entities->array_v[i], &job.entities[i],
                             &error)) {
          return ErrorResponse(
              400, "entities[" + std::to_string(i) + "]: " + error);
        }
      }
    } else {
      const obs::json::Value* entity = parsed->Find("entity");
      if (entity == nullptr) {
        return ErrorResponse(400, "body needs an object field 'entity'");
      }
      job.entities.resize(1);
      if (!ParseEntityJson(*entity, &job.entities[0], &error)) {
        return ErrorResponse(400, error);
      }
    }
  }

  job.enqueue_us = obs::TraceNowUs();
  std::future<std::vector<LinkResult>> future = job.done.get_future();
  const PushResult pushed = link_queue_.TryPush(std::move(job));
  SKYEX_GAUGE_SET("serve/queue_depth",
                  static_cast<double>(link_queue_.size()));
  if (pushed == PushResult::kFull) {
    SKYEX_COUNTER_INC("serve/rejected_429");
    HttpResponse response = ErrorResponse(429, "link queue is full");
    response.extra_headers.emplace_back(
        "Retry-After", std::to_string(options_.retry_after_s));
    return response;
  }
  if (pushed == PushResult::kClosed) {
    return ErrorResponse(503, "server is draining");
  }

  std::vector<LinkResult> results;
  {
    SKYEX_SPAN("serve/queue_wait");
    results = future.get();
  }

  json::Writer writer;
  if (batch) {
    writer.BeginObject();
    writer.Key("results").BeginArray();
    for (const LinkResult& result : results) {
      WriteLinkResultJson(&writer, result);
    }
    writer.EndArray();
    writer.EndObject();
  } else {
    WriteLinkResultJson(&writer, results[0]);
  }
  HttpResponse response;
  response.body = writer.Take();
  return response;
}

void Server::LinkerLoop() {
  std::vector<LinkJob> jobs;
  while (link_queue_.PopBatch(
      &jobs, std::chrono::microseconds(options_.batch_window_us),
      options_.max_batch)) {
    SKYEX_GAUGE_SET("serve/queue_depth",
                    static_cast<double>(link_queue_.size()));
    std::vector<data::SpatialEntity> entities;
    std::vector<size_t> offsets;  // start of each job's slice
    {
      SKYEX_SPAN("serve/batch_assembly");
      const double now_us = obs::TraceNowUs();
      size_t total = 0;
      for (const LinkJob& job : jobs) total += job.entities.size();
      entities.reserve(total);
      offsets.reserve(jobs.size());
      for (LinkJob& job : jobs) {
        SKYEX_HISTOGRAM_OBSERVE_US("serve/queue_wait_us",
                                   now_us - job.enqueue_us);
        offsets.push_back(entities.size());
        for (data::SpatialEntity& e : job.entities) {
          entities.push_back(std::move(e));
        }
      }
      SKYEX_HISTOGRAM_OBSERVE("serve/batch_size",
                              static_cast<double>(total),
                              BatchSizeBuckets());
    }

    std::vector<LinkResult> results = service_->LinkMany(entities);

    for (size_t j = 0; j < jobs.size(); ++j) {
      const size_t begin = offsets[j];
      const size_t end =
          j + 1 < jobs.size() ? offsets[j + 1] : results.size();
      std::vector<LinkResult> slice(
          std::make_move_iterator(results.begin() + begin),
          std::make_move_iterator(results.begin() + end));
      jobs[j].done.set_value(std::move(slice));
    }
  }
}

HttpResponse Server::ErrorResponse(int status,
                                   const std::string& message) const {
  json::Writer writer;
  writer.BeginObject();
  writer.Key("error").String(message);
  writer.Key("status").Int(status);
  writer.EndObject();
  HttpResponse response;
  response.status = status;
  response.body = writer.Take();
  return response;
}

}  // namespace skyex::serve
