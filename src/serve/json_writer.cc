#include "serve/json_writer.h"

#include <cmath>
#include <cstdio>

namespace skyex::serve::json {

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Writer& Writer::Number(double value) {
  if (!std::isfinite(value)) return Null();  // JSON has no inf/nan
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::fabs(value) < 1e15) {
    return Int(static_cast<int64_t>(value));
  }
  Prefix();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_ += buffer;
  return *this;
}

}  // namespace skyex::serve::json
