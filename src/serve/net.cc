#include "serve/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace skyex::serve {

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

UniqueFd ListenTcp(uint16_t port, int backlog, std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    return UniqueFd();
  };
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return fail("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return fail("listen");
  return fd;
}

uint16_t LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int AcceptWithTimeout(int listen_fd, int timeout_ms) {
  pollfd pfd{listen_fd, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc == 0) return kAcceptTimeout;
  if (rc < 0) return errno == EINTR ? kAcceptTimeout : kAcceptError;
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
                   errno == ECONNABORTED
               ? kAcceptTimeout
               : kAcceptError;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

UniqueFd ConnectTcp(const std::string& host, uint16_t port, int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return UniqueFd();
  }
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return UniqueFd();
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) return UniqueFd();
    pollfd pfd{fd.get(), POLLOUT, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return UniqueFd();
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      return UniqueFd();
    }
  }
  ::fcntl(fd.get(), F_SETFL, flags);  // back to blocking
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

long ReadWithTimeout(int fd, char* buf, size_t len, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc == 0) return kIoTimeout;
  if (rc < 0) return errno == EINTR ? kIoTimeout : kIoError;
  const ssize_t n = ::recv(fd, buf, len, 0);
  if (n < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR
               ? kIoTimeout
               : kIoError;
  }
  return n;
}

bool WriteAll(int fd, const char* buf, size_t len, int timeout_ms) {
  size_t written = 0;
  while (written < len) {
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0) return false;
    const ssize_t n =
        ::send(fd, buf + written, len - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace skyex::serve
