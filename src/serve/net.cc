#include "serve/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <thread>

#include "fault/fault.h"

namespace skyex::serve {

namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  if (left <= 0) return 0;
  return static_cast<int>(
      std::min<long long>(left, std::numeric_limits<int>::max()));
}

void FaultSleep(double ms) {
  if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

UniqueFd ListenTcp(uint16_t port, int backlog, std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    return UniqueFd();
  };
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return fail("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return fail("listen");
  return fd;
}

uint16_t LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int AcceptWithTimeout(int listen_fd, int timeout_ms) {
  pollfd pfd{listen_fd, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc == 0) return kAcceptTimeout;
  if (rc < 0) return errno == EINTR ? kAcceptTimeout : kAcceptError;
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
                   errno == ECONNABORTED
               ? kAcceptTimeout
               : kAcceptError;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

UniqueFd ConnectTcp(const std::string& host, uint16_t port, int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return UniqueFd();
  }
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return UniqueFd();
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) return UniqueFd();
    pollfd pfd{fd.get(), POLLOUT, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return UniqueFd();
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      return UniqueFd();
    }
  }
  ::fcntl(fd.get(), F_SETFL, flags);  // back to blocking
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

long ReadWithTimeout(int fd, char* buf, size_t len, int timeout_ms) {
  // EINTR — from poll or recv — is retried against the original
  // deadline instead of being surfaced as a timeout: a signal landing
  // mid-read (SIGTERM during drain, profiling signals) must not abort a
  // healthy connection.
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    fault::FaultAction fault_action;
    if (SKYEX_FAULT_FIRE("net.slow_read", &fault_action)) {
      FaultSleep(fault_action.ms);
    }
    if (SKYEX_FAULT_FIRE("net.read_err", nullptr)) return kIoError;
    if (SKYEX_FAULT_FIRE("net.read_eintr", nullptr)) {
      // Simulated EINTR from recv: take the retry path.
      if (RemainingMs(deadline) == 0) return kIoTimeout;
      continue;
    }
    const int wait_ms = RemainingMs(deadline);
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc == 0) return kIoTimeout;
    if (rc < 0) {
      if (errno == EINTR) continue;
      return kIoError;
    }
    size_t want = len;
    if (SKYEX_FAULT_FIRE("net.short_read", nullptr)) {
      want = std::min<size_t>(want, 1);  // torn packet: 1 byte at a time
    }
    const ssize_t n = ::recv(fd, buf, want, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (RemainingMs(deadline) == 0) return kIoTimeout;
        continue;
      }
      return kIoError;
    }
    return n;
  }
}

bool WriteAll(int fd, const char* buf, size_t len, int timeout_ms) {
  // One deadline bounds the whole write (a peer draining one byte per
  // poll window must not stretch a bounded write into minutes), and
  // EINTR from poll or send is retried, never treated as failure —
  // without the retry, a signal mid-write tears large /v1/link_batch
  // responses that straddle several send() calls.
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  size_t written = 0;
  while (written < len) {
    fault::FaultAction fault_action;
    if (SKYEX_FAULT_FIRE("net.slow_write", &fault_action)) {
      FaultSleep(fault_action.ms);
    }
    if (SKYEX_FAULT_FIRE("net.write_err", nullptr)) return false;
    if (SKYEX_FAULT_FIRE("net.write_eintr", nullptr)) {
      // Simulated EINTR from send: take the retry path.
      if (RemainingMs(deadline) == 0) return false;
      continue;
    }
    const int wait_ms = RemainingMs(deadline);
    if (wait_ms == 0) return false;
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc == 0) return false;
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    size_t chunk = len - written;
    if (SKYEX_FAULT_FIRE("net.short_write", nullptr)) {
      chunk = std::min<size_t>(chunk, 1);  // force the partial-write path
    }
    const ssize_t n = ::send(fd, buf + written, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace skyex::serve
