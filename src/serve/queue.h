#ifndef SKYEX_SERVE_QUEUE_H_
#define SKYEX_SERVE_QUEUE_H_

// Bounded MPSC/MPMC queue with batch draining — the admission-control
// core of the serving layer. Producers never block: a full queue is an
// immediate kFull (the caller turns it into 429 + Retry-After). The
// consumer blocks for work, then lingers up to a micro-batching window
// so closely-spaced requests coalesce into one drain.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace skyex::serve {

enum class PushResult { kOk, kFull, kClosed };

template <typename T>
class BatchQueue {
 public:
  explicit BatchQueue(size_t capacity) : capacity_(capacity) {}

  /// Non-blocking admission; kFull when `capacity` items are queued.
  PushResult TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks until at least one item is available, then waits up to
  /// `batch_window` for more and moves up to `max_batch` items into
  /// `out` (cleared first). Returns false only when the queue is closed
  /// and fully drained.
  bool PopBatch(std::vector<T>* out, std::chrono::microseconds batch_window,
                size_t max_batch) {
    out->clear();
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;  // closed and drained
    if (batch_window.count() > 0 && !closed_) {
      // Linger for the coalescing window (or until the batch is full).
      cv_.wait_for(lock, batch_window, [this, max_batch] {
        return items_.size() >= max_batch || closed_;
      });
    }
    const size_t take = max_batch == 0
                            ? items_.size()
                            : std::min(items_.size(), max_batch);
    out->reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return true;
  }

  /// Rejects future pushes; queued items remain poppable (drain).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace skyex::serve

#endif  // SKYEX_SERVE_QUEUE_H_
