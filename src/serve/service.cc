#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "core/linker.h"
#include "core/model_io.h"
#include "core/pipeline.h"
#include "core/skyex_t.h"
#include "features/feature_schema.h"
#include "geo/distance.h"
#include "geo/quadflex.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "quality/quality.h"
#include "text/jaro.h"
#include "text/normalize.h"

namespace skyex::serve {

namespace {

bool ParseSourceName(const std::string& text, data::Source* out) {
  for (int s = 0; s <= static_cast<int>(data::Source::kZagat); ++s) {
    const auto source = static_cast<data::Source>(s);
    if (text == data::SourceName(source)) {
      *out = source;
      return true;
    }
  }
  return false;
}

const obs::json::Value* FindTyped(const obs::json::Value& object,
                                  std::string_view key,
                                  obs::json::Value::Type type) {
  const obs::json::Value* v = object.Find(key);
  return v != nullptr && v->type == type ? v : nullptr;
}

}  // namespace

bool ParseEntityJson(const obs::json::Value& value,
                     data::SpatialEntity* out, std::string* error) {
  using Type = obs::json::Value::Type;
  if (!value.is_object()) {
    *error = "entity must be a JSON object";
    return false;
  }
  *out = data::SpatialEntity{};
  out->location = geo::GeoPoint::Invalid();

  const obs::json::Value* name = FindTyped(value, "name", Type::kString);
  if (name == nullptr || name->string_v.empty()) {
    *error = "entity needs a non-empty string field 'name'";
    return false;
  }
  out->name = name->string_v;

  if (const auto* v = FindTyped(value, "id", Type::kNumber)) {
    out->id = static_cast<uint64_t>(v->number_v);
  }
  if (const obs::json::Value* v = value.Find("source")) {
    if (v->is_string()) {
      if (!ParseSourceName(v->string_v, &out->source)) {
        *error = "unknown source '" + v->string_v + "'";
        return false;
      }
    } else if (v->is_number()) {
      const int s = static_cast<int>(v->number_v);
      if (s < 0 || s > static_cast<int>(data::Source::kZagat)) {
        *error = "source index out of range";
        return false;
      }
      out->source = static_cast<data::Source>(s);
    } else {
      *error = "source must be a string or an integer";
      return false;
    }
  }
  if (const auto* v = FindTyped(value, "address_name", Type::kString)) {
    out->address_name = v->string_v;
  }
  if (const auto* v = FindTyped(value, "address_number", Type::kNumber)) {
    out->address_number = static_cast<int>(v->number_v);
  }
  if (const auto* v = FindTyped(value, "city", Type::kString)) {
    out->city = v->string_v;
  }
  if (const auto* v = FindTyped(value, "phone", Type::kString)) {
    out->phone = v->string_v;
  }
  if (const auto* v = FindTyped(value, "website", Type::kString)) {
    out->website = v->string_v;
  }
  if (const auto* v = FindTyped(value, "categories", Type::kArray)) {
    for (const auto& item : v->array_v) {
      if (!item.is_string()) {
        *error = "categories must be an array of strings";
        return false;
      }
      out->categories.push_back(item.string_v);
    }
  }
  const auto* lat = FindTyped(value, "lat", Type::kNumber);
  const auto* lon = FindTyped(value, "lon", Type::kNumber);
  if ((lat == nullptr) != (lon == nullptr)) {
    *error = "lat and lon must be given together";
    return false;
  }
  if (lat != nullptr) {
    // NaN fails every range comparison, so check finiteness explicitly
    // — a NaN coordinate must not slip into the spatial index.
    if (!std::isfinite(lat->number_v) || !std::isfinite(lon->number_v)) {
      *error = "lat/lon must be finite";
      return false;
    }
    if (lat->number_v < -90.0 || lat->number_v > 90.0 ||
        lon->number_v < -180.0 || lon->number_v > 180.0) {
      *error = "lat/lon out of range";
      return false;
    }
    out->location = geo::GeoPoint{lat->number_v, lon->number_v, true};
  }
  return true;
}

void WriteEntityJson(json::Writer* writer, const data::SpatialEntity& e) {
  writer->BeginObject();
  writer->Key("id").Uint(e.id);
  writer->Key("source").String(data::SourceName(e.source));
  writer->Key("name").String(e.name);
  if (!e.address_name.empty()) {
    writer->Key("address_name").String(e.address_name);
  }
  if (e.address_number >= 0) {
    writer->Key("address_number").Int(e.address_number);
  }
  if (!e.city.empty()) writer->Key("city").String(e.city);
  if (!e.phone.empty()) writer->Key("phone").String(e.phone);
  if (!e.website.empty()) writer->Key("website").String(e.website);
  if (!e.categories.empty()) {
    writer->Key("categories").BeginArray();
    for (const auto& c : e.categories) writer->String(c);
    writer->EndArray();
  }
  if (e.location.valid) {
    writer->Key("lat").Number(e.location.lat);
    writer->Key("lon").Number(e.location.lon);
  }
  writer->EndObject();
}

void WriteLinkResultJson(json::Writer* writer, const LinkResult& result,
                         const std::string* request_id) {
  writer->BeginObject();
  if (request_id != nullptr) {
    writer->Key("request_id").String(*request_id);
  }
  writer->Key("record_index").Uint(result.record_index);
  if (result.degraded) writer->Key("degraded").Bool(true);
  writer->Key("links").BeginArray();
  for (const LinkedRecord& link : result.links) {
    writer->BeginObject();
    writer->Key("record").Uint(link.record);
    writer->Key("id").Uint(link.id);
    writer->Key("name").String(link.name);
    writer->Key("source").String(link.source);
    writer->EndObject();
  }
  writer->EndArray();
  writer->Key("merged");
  WriteEntityJson(writer, result.merged);
  writer->EndObject();
}

LinkService::DegradedEntry LinkService::MakeDegradedEntry(
    const data::SpatialEntity& e) {
  DegradedEntry entry;
  entry.id = e.id;
  entry.source = std::string(data::SourceName(e.source));
  entry.name = e.name;
  entry.normalized_name = text::Normalize(e.name);
  entry.location = e.location;
  return entry;
}

LinkService::LinkService(core::IncrementalLinker linker,
                         std::string model_text,
                         DegradedOptions degraded_options)
    : linker_(std::move(linker)),
      model_text_(std::move(model_text)),
      degraded_options_(degraded_options) {
  const data::Dataset& dataset = linker_.dataset();
  degraded_index_.reserve(dataset.size());
  for (const data::SpatialEntity& e : dataset.entities) {
    degraded_index_.push_back(MakeDegradedEntry(e));
  }
}

std::vector<LinkResult> LinkService::LinkMany(
    const std::vector<data::SpatialEntity>& entities,
    LinkBatchStats* stats) {
  SKYEX_SPAN("serve/link_batch");
  std::vector<LinkResult> results;
  results.reserve(entities.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const data::SpatialEntity& entity : entities) {
      LinkResult result;
      core::AddRecordStats add_stats;
#if !defined(SKYEX_OBS_DISABLED)
      // Linkage-quality hooks (no-ops until skyex_serve enables the
      // quality runtime): entity-level drift observation for every
      // request, full decision capture for sampled ones.
      quality::Runtime& quality_runtime = quality::Runtime::Global();
      quality_runtime.ObserveEntity(entity);
      quality::MatchCapture capture;
      const bool capturing = quality_runtime.ShouldCapture();
      std::vector<core::ScoredMatch> matches = linker_.MatchRecord(
          entity, stats != nullptr ? &add_stats : nullptr,
          capturing ? &capture : nullptr);
      if (capturing) {
        quality_runtime.RecordCapture(entity, shard_id_, std::move(capture));
      }
#else
      std::vector<core::ScoredMatch> matches = linker_.MatchRecord(
          entity, stats != nullptr ? &add_stats : nullptr);
#endif
      linker_.Append(entity);
      if (stats != nullptr) {
        stats->extract_us += add_stats.candidates_us + add_stats.prefilter_us;
        stats->prefilter_us += add_stats.prefilter_us;
        stats->rank_us += add_stats.score_us;
        stats->prefilter_dropped += add_stats.prefilter_dropped;
        stats->lru_hits += add_stats.lru_hits;
        stats->lru_misses += add_stats.lru_misses;
      }
      const data::Dataset& dataset = linker_.dataset();
      result.record_index = dataset.size() - 1;
      // Rank exactly like the shard router's gather, so `--shards=1`
      // serializes the same bytes as this path.
      std::sort(matches.begin(), matches.end(),
                [&dataset](const core::ScoredMatch& a,
                           const core::ScoredMatch& b) {
                  return LinkRankBefore(a.score, dataset[a.index].id, a.index,
                                        b.score, dataset[b.index].id, b.index);
                });
      result.links.reserve(matches.size());
      std::vector<const data::SpatialEntity*> cluster;
      cluster.reserve(matches.size() + 1);
      for (const core::ScoredMatch& m : matches) {
        result.links.push_back(LinkedRecord{
            m.index, dataset[m.index].id, dataset[m.index].name,
            std::string(data::SourceName(dataset[m.index].source))});
        cluster.push_back(&dataset[m.index]);
      }
      cluster.push_back(&dataset[result.record_index]);
      result.merged = core::MergeRecords(cluster);
      SKYEX_COUNTER_INC("serve/link_requests");
      SKYEX_COUNTER_ADD("serve/linked_records", matches.size());
      results.push_back(std::move(result));
    }
  }
  // Mirror the new records into the degraded index outside the linker
  // lock, so degraded readers only ever contend on this short append.
  {
    std::lock_guard<std::mutex> lock(degraded_mutex_);
    for (const data::SpatialEntity& entity : entities) {
      degraded_index_.push_back(MakeDegradedEntry(entity));
    }
  }
  return results;
}

std::vector<ScoredLink> LinkService::MatchScored(
    const data::SpatialEntity& entity, bool persist,
    core::AddRecordStats* stats) {
  SKYEX_SPAN("serve/match_scored");
  std::vector<ScoredLink> links;
  {
    std::lock_guard<std::mutex> lock(mutex_);
#if !defined(SKYEX_OBS_DISABLED)
    // Shard-path quality hooks. Entity drift is observed on the owner
    // only (persist == true) so a scatter to k shards counts once.
    quality::Runtime& quality_runtime = quality::Runtime::Global();
    if (persist) quality_runtime.ObserveEntity(entity);
    quality::MatchCapture capture;
    const bool capturing = quality_runtime.ShouldCapture();
    const std::vector<core::ScoredMatch> matches =
        linker_.MatchRecord(entity, stats, capturing ? &capture : nullptr);
    if (capturing) {
      quality_runtime.RecordCapture(entity, shard_id_, std::move(capture));
    }
#else
    const std::vector<core::ScoredMatch> matches =
        linker_.MatchRecord(entity, stats);
#endif
    const data::Dataset& dataset = linker_.dataset();
    links.reserve(matches.size());
    for (const core::ScoredMatch& m : matches) {
      links.push_back(ScoredLink{m.index, m.score, dataset[m.index]});
    }
    if (persist) linker_.Append(entity);
  }
  if (persist) {
    std::lock_guard<std::mutex> lock(degraded_mutex_);
    degraded_index_.push_back(MakeDegradedEntry(entity));
  }
  return links;
}

std::vector<LinkResult> LinkService::LinkDegraded(
    const std::vector<data::SpatialEntity>& entities) const {
  SKYEX_SPAN("serve/link_degraded");
  std::vector<LinkResult> results;
  results.reserve(entities.size());
  std::lock_guard<std::mutex> lock(degraded_mutex_);
  for (const data::SpatialEntity& entity : entities) {
#if !defined(SKYEX_OBS_DISABLED)
    // Degraded answers audit as decision-less records: the entity was
    // served but the model never scored it.
    quality::Runtime& quality_runtime = quality::Runtime::Global();
    quality_runtime.ObserveEntity(entity);
    if (quality_runtime.ShouldCapture()) {
      quality_runtime.RecordDegraded(entity, shard_id_);
    }
#endif
    LinkResult result;
    result.degraded = true;
    // Where the record *would* land; nothing is actually appended.
    result.record_index = degraded_index_.size();
    const std::string normalized = text::Normalize(entity.name);
    for (size_t i = 0; i < degraded_index_.size(); ++i) {
      const DegradedEntry& entry = degraded_index_[i];
      if (entity.location.valid && entry.location.valid &&
          geo::HaversineMeters(entity.location, entry.location) >
              degraded_options_.radius_m) {
        continue;
      }
      const double f_sim =
          text::JaroWinklerSimilarity(normalized, entry.normalized_name);
      if (f_sim >= degraded_options_.f_sim_threshold) {
        result.links.push_back(
            LinkedRecord{i, entry.id, entry.name, entry.source});
      }
    }
    result.merged = entity;
    SKYEX_COUNTER_INC("serve/degraded_links");
    results.push_back(std::move(result));
  }
  return results;
}

size_t LinkService::record_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return linker_.dataset().size();
}

namespace {

/// Global calibration shared by both bootstrap paths: validated model,
/// full-corpus extractor, feature matrix over the blocked pairs, and
/// the accepted (positively labeled) rows the acceptance threshold is
/// calibrated from. Computed ONCE on the full dataset even when serving
/// sharded, so every shard links with the same decision boundary.
struct Calibration {
  std::optional<features::LgmXExtractor> extractor;
  ml::FeatureMatrix features;
  std::vector<size_t> accepted;
};

bool Calibrate(const data::Dataset& dataset, const core::SkyExTModel& model,
               Calibration* out, std::string* error) {
  if (model.preference == nullptr ||
      !skyline::Compile(*model.preference).has_value()) {
    if (error != nullptr) *error = "model preference is missing or invalid";
    return false;
  }
  // A corrupt or mismatched model may parse cleanly yet reference
  // feature indices beyond the LGM-X schema; serving it would read out
  // of bounds on every request. Reject it here, once.
  std::vector<size_t> used_features;
  model.preference->CollectFeatures(&used_features);
  const size_t schema_width = features::LgmXFeatureCount();
  for (size_t feature : used_features) {
    if (feature >= schema_width) {
      if (error != nullptr) {
        *error = "model references feature index " +
                 std::to_string(feature) + " but the LGM-X schema has " +
                 std::to_string(schema_width) + " features";
      }
      return false;
    }
  }
  const bool has_coordinates =
      !dataset.entities.empty() && dataset.entities.front().location.valid;
  std::vector<geo::CandidatePair> pairs =
      has_coordinates ? geo::QuadFlexBlock(dataset.Points())
                      : geo::CartesianBlock(dataset.size());
  out->extractor = features::LgmXExtractor::FromCorpus(dataset);
  out->features = out->extractor->Extract(dataset, pairs);
  const std::vector<size_t> all_rows = core::AllRows(pairs.size());
  const std::vector<uint8_t> predicted =
      core::SkyExT::Label(out->features, all_rows, model);
  for (size_t r = 0; r < predicted.size(); ++r) {
    if (predicted[r]) out->accepted.push_back(r);
  }
  if (out->accepted.empty()) {
    if (error != nullptr) {
      *error = "model accepts no pair of the dataset; cannot calibrate";
    }
    return false;
  }
  SKYEX_LOG_INFO("serve/bootstrap", "calibrated incremental linker",
                 {"records", dataset.size()}, {"pairs", pairs.size()},
                 {"accepted_pairs", out->accepted.size()},
                 {"blocker", has_coordinates ? "quadflex" : "cartesian"});
  return true;
}

/// Deep copy — SkyExTModel owns its preference tree.
core::SkyExTModel CloneModel(const core::SkyExTModel& model) {
  core::SkyExTModel copy;
  copy.preference = model.preference->Clone();
  copy.cutoff_ratio = model.cutoff_ratio;
  copy.group1 = model.group1;
  copy.group2 = model.group2;
  copy.train_f1 = model.train_f1;
  return copy;
}

}  // namespace

std::unique_ptr<LinkService> BootstrapLinkService(
    data::Dataset dataset, core::SkyExTModel model,
    const core::IncrementalLinkerOptions& options, std::string* error) {
  SKYEX_SPAN("serve/bootstrap");
  Calibration cal;
  if (!Calibrate(dataset, model, &cal, error)) return nullptr;
  std::string model_text = core::SaveModel(model);
  core::IncrementalLinker linker(std::move(dataset),
                                 std::move(*cal.extractor), std::move(model),
                                 cal.features, cal.accepted, options);
  return std::make_unique<LinkService>(std::move(linker),
                                       std::move(model_text));
}

std::vector<std::unique_ptr<LinkService>> BootstrapShardedLinkServices(
    data::Dataset dataset, core::SkyExTModel model,
    const core::IncrementalLinkerOptions& options,
    const std::vector<std::vector<size_t>>& partitions,
    std::string* model_text, std::string* error) {
  SKYEX_SPAN("serve/bootstrap_sharded");
  Calibration cal;
  if (!Calibrate(dataset, model, &cal, error)) return {};
  const std::string text = core::SaveModel(model);
  if (model_text != nullptr) *model_text = text;
  std::vector<std::unique_ptr<LinkService>> services;
  services.reserve(partitions.size());
  for (const std::vector<size_t>& partition : partitions) {
    data::Dataset slice;
    slice.entities.reserve(partition.size());
    for (size_t i : partition) slice.entities.push_back(dataset[i]);
    // Every shard gets the full-corpus extractor and the globally
    // calibrated threshold; only the record partition differs.
    core::IncrementalLinker linker(std::move(slice), *cal.extractor,
                                   CloneModel(model), cal.features,
                                   cal.accepted, options);
    services.push_back(
        std::make_unique<LinkService>(std::move(linker), text));
    services.back()->set_shard_id(
        static_cast<uint32_t>(services.size() - 1));
  }
  return services;
}

}  // namespace skyex::serve
