#ifndef SKYEX_SERVE_SERVER_H_
#define SKYEX_SERVE_SERVER_H_

// Embedded HTTP/1.1 linkage server. Architecture:
//
//   listener ──> conn queue ──> I/O workers ──> link queue ──> linker
//    thread      (bounded)      (pool of N)      (bounded,      thread
//                                                 admission)
//
// I/O workers parse requests and answer the cheap endpoints inline;
// /v1/link and /v1/link_batch are admitted into the bounded link queue
// (429 + Retry-After on overflow) and the single linker thread coalesces
// queued requests into one LinkService pass per wakeup (micro-batching
// window `batch_window_us`). The linker thread is the only writer of the
// IncrementalLinker dataset, satisfying the serialization contract of
// core/incremental.h.
//
// Resilience (docs/robustness.md has the full semantics):
//   - per-request deadline (`deadline_ms`): an admitted link job that
//     misses its deadline is cancelled (the linker skips it) and the
//     request gets a degraded fallback answer or 503 + Retry-After;
//   - circuit breaker around the linker: deadline expiries feed a
//     sliding failure window; past the threshold the server sheds
//     /v1/link* load with 503 + *jittered* Retry-After until a
//     half-open probe succeeds;
//   - watchdog (`watchdog_ms`): a linker thread that stops heartbeating
//     while work is pending marks the server wedged — /healthz turns
//     503, the breaker is forced open, and link requests are answered
//     degraded until the heartbeat resumes;
//   - degraded fallback (`degraded_fallback`): answers from
//     LinkService::LinkDegraded, marked "degraded":true, never
//     persisted.
//
// Endpoints:
//   POST /v1/link        {"entity": {...}}    -> links + golden record
//   POST /v1/link_batch  {"entities": [...]}  -> {"results": [...]}
//   GET  /healthz                             -> liveness + record count
//   GET  /metrics                             -> obs metrics registry JSON
//        /metrics?format=prometheus           -> Prometheus text format
//                                               with request-id exemplars
//   GET  /model                               -> model_io text (text/plain)
//   GET  /debug/flight                        -> flight-recorder dump JSON
//   GET  /debug/trace?seconds=N               -> enables the trace
//        collector for N seconds (cap 10) and streams the window as
//        Chrome trace JSON; the linker keeps running throughout
//   GET  /debug/pprof/profile?seconds=N       -> collects CPU samples
//        for N seconds (cap 30) and returns them collapsed-stack
//        (flamegraph.pl format; &format=json for the JSON profile).
//        Requires a running profiler (`profile_hz` > 0, the skyex_serve
//        default) — 503 otherwise. Serving continues throughout. The
//        window sleeps on the connection's I/O worker: when closed-loop
//        clients hold every worker, the scrape connection is not picked
//        up until one frees, so leave a worker unoccupied while scraping
//        (e.g. drive N-1 load connections against N workers).
//   GET  /debug/pprof/heap                    -> per-zone heap
//        attribution JSON (prof/heap.h); "active":false when the
//        allocation hooks are compiled out
//   GET  /buildz                              -> build identification
//        JSON (git sha, build type, compiled-in options, SIMD level)
//   GET  /debug/quality                       -> linkage-quality state
//        JSON (audit-log counters, drift statistics); "compiled":false
//        under SKYEX_OBS=OFF
//
// Request-scoped tracing: every request gets a 64-bit request id —
// adopted from an incoming X-Request-Id header (hex ids parse exactly,
// anything else is hashed) or freshly generated — installed as the
// thread's obs::TraceContext for the request's lifetime, carried
// through the link queue and the linker (and into pool tasks via
// TaskGroup's context capture), echoed back as an X-Request-Id
// response header and a "request_id" member of link response bodies,
// and recorded as the request's flight-recorder timeline key and
// latency-histogram exemplar.
//
// Stop() drains gracefully: stop accepting, serve requests already in
// flight (idle keep-alive connections are closed), complete every
// admitted link job, then join all threads.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/spatial_entity.h"
#include "obs/flight.h"
#include "serve/breaker.h"
#include "serve/http.h"
#include "serve/net.h"
#include "serve/queue.h"
#include "serve/service.h"
#include "serve/shard_api.h"

namespace skyex::serve {

struct ServerOptions {
  uint16_t port = 8080;         // 0 = pick an ephemeral port
  size_t workers = 8;           // I/O worker threads
  size_t queue_depth = 128;     // link-job admission queue capacity
  size_t conn_backlog = 256;    // accepted-connection queue capacity
  uint32_t batch_window_us = 1000;  // micro-batch coalescing window
  size_t max_batch = 64;        // link jobs drained per linker wakeup
  size_t max_batch_entities = 256;  // entities per /v1/link_batch request
  size_t max_body_bytes = 1 << 20;
  int read_timeout_ms = 5000;
  int write_timeout_ms = 5000;
  int retry_after_s = 1;        // Retry-After on 429
  int listen_backlog = 128;
  int deadline_ms = 0;          // per-request link deadline (0 = none)
  bool degraded_fallback = true;  // degrade instead of 503 when possible
  int watchdog_ms = 0;          // wedged-linker threshold (0 = off)
  // Sampling-profiler rate for this server's process (Hz). 0 leaves the
  // profiler alone (unit-test / sanitizer default); the skyex_serve
  // binary defaults it to prof::CpuProfiler::kDefaultHz so profiles are
  // always collectable in production.
  int profile_hz = 0;
  CircuitBreakerOptions breaker;  // sheds load on sustained failures
};

class Server {
 public:
  /// `service` must outlive the server.
  Server(LinkService* service, ServerOptions options);

  /// Sharded (router) mode: /v1/link* scatter-gathers through
  /// `backend` instead of the single linker thread. The global link
  /// queue, linker thread, server breaker, and server watchdog are not
  /// used — admission control, micro-batching, breakers, and the
  /// watchdog all live per shard behind the backend (src/shard/).
  /// `backend` must outlive the server and be started by the caller.
  Server(ShardBackend* backend, ServerOptions options);

  ~Server();

  /// Binds and spawns the listener, worker and linker threads. False +
  /// `error` when the port cannot be bound.
  bool Start(std::string* error);

  /// The bound port (after Start; useful with options.port = 0).
  uint16_t port() const { return port_; }

  /// Graceful drain; blocks until every thread is joined. Idempotent.
  void Stop();

  struct Stats {
    uint64_t connections = 0;
    uint64_t requests = 0;
    uint64_t responses_ok = 0;
    uint64_t responses_client_error = 0;  // 4xx except 429
    uint64_t rejected = 0;                // 429
    uint64_t shed = 0;                    // 503 (deliberate backpressure)
    uint64_t responses_server_error = 0;  // 5xx except 503
    uint64_t deadline_expired = 0;        // link jobs past deadline
    uint64_t degraded = 0;                // degraded fallback answers
    uint64_t breaker_rejected = 0;        // shed by the open breaker
    uint64_t breaker_opens = 0;
    uint64_t watchdog_trips = 0;
  };
  Stats stats() const;

  /// True while the watchdog considers the linker wedged (router mode:
  /// while EVERY shard is wedged).
  bool wedged() const {
    return backend_ != nullptr ? backend_->wedged()
                               : wedged_.load(std::memory_order_relaxed);
  }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

 private:
  // Linker-side phase timings for one job, shared between the linker
  // thread (writer, before the promise is fulfilled) and the I/O
  // worker (reader, after future.get() returns) — the promise/future
  // handoff orders the accesses.
  struct LinkPhases {
    double queue_wait_us = 0.0;  // enqueue -> batch popped
    double batch_wait_us = 0.0;  // batch popped -> linking starts
    double extract_us = 0.0;     // candidate scans + pre-filter (batch-level)
    double prefilter_us = 0.0;   // stage-1 share of extract_us
    double rank_us = 0.0;        // scoring + acceptance (batch-level)
    uint32_t batch_size = 0;         // entities linked in the batch
    uint64_t prefilter_dropped = 0;  // candidates cut by the sketch filter
    uint64_t lru_hits = 0;           // text-cache hits across the batch
    uint64_t lru_misses = 0;         // text-cache misses across the batch
  };

  struct LinkJob {
    std::vector<data::SpatialEntity> entities;
    double enqueue_us = 0.0;
    uint64_t request_id = 0;
    std::shared_ptr<LinkPhases> phases;
    // Set by the I/O worker when the request's deadline expires; the
    // linker skips cancelled jobs instead of mutating the dataset for
    // a caller that already gave up.
    std::shared_ptr<std::atomic<bool>> cancelled;
    std::promise<std::vector<LinkResult>> done;
  };

  void ListenerLoop();
  void WorkerLoop();
  void LinkerLoop();
  void WatchdogLoop();
  void ServeConnection(UniqueFd fd);
  HttpResponse Dispatch(const HttpRequest& request,
                        obs::RequestTimeline* timeline);
  HttpResponse HandleLink(const HttpRequest& request, bool batch,
                          obs::RequestTimeline* timeline);
  // Router-mode link path: runs the scatter-gather on the I/O worker
  // (per-shard queues do the micro-batching) and fills the timeline's
  // scatter/shard_link/gather phases.
  HttpResponse HandleLinkSharded(std::vector<data::SpatialEntity> entities,
                                 bool batch,
                                 obs::RequestTimeline* timeline);
  HttpResponse HandleDebugTrace(const HttpRequest& request);
  HttpResponse HandleProfile(const HttpRequest& request);
  HttpResponse DegradedResponse(
      const std::vector<data::SpatialEntity>& entities, bool batch,
      obs::RequestTimeline* timeline);
  HttpResponse ShedResponse(const std::string& message);
  HttpResponse ErrorResponse(int status, const std::string& message) const;
  // Builds the link response body, timing serialization into the
  // request's timeline and echoing its id in the body.
  static HttpResponse LinkResponse(const std::vector<LinkResult>& results,
                                   bool batch,
                                   obs::RequestTimeline* timeline);
  // Records a flight-recorder marker + dump when the breaker opened
  // since the last call (deadline-fed opens and watchdog force-opens).
  void NoteBreakerOpens();

  LinkService* service_;            // unsharded mode (else nullptr)
  ShardBackend* backend_ = nullptr; // router mode (else nullptr)
  ServerOptions options_;
  UniqueFd listen_fd_;
  uint16_t port_ = 0;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};   // listener + watchdog exit
  std::atomic<bool> draining_{false};   // workers abort idle reads
  std::atomic<bool> stopped_{false};

  BatchQueue<UniqueFd> conn_queue_;
  BatchQueue<LinkJob> link_queue_;
  CircuitBreaker breaker_;

  std::thread listener_;
  std::vector<std::thread> workers_;
  std::thread linker_;
  std::thread watchdog_;

  // Watchdog protocol: the linker stamps `linker_heartbeat_ms_` around
  // every batch; wedged = heartbeat stale while busy or work is queued.
  std::atomic<int64_t> linker_heartbeat_ms_{0};
  std::atomic<bool> linker_busy_{false};
  std::atomic<bool> wedged_{false};
  // Record count as of the last completed batch — lets /healthz answer
  // without touching the (possibly wedged) linker mutex.
  std::atomic<uint64_t> last_record_count_{0};

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_ok_{0};
  std::atomic<uint64_t> responses_client_error_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> responses_server_error_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> breaker_rejected_{0};
  std::atomic<uint64_t> watchdog_trips_{0};
  // Breaker opens already reported to the flight recorder.
  std::atomic<uint64_t> flight_seen_opens_{0};
};

}  // namespace skyex::serve

#endif  // SKYEX_SERVE_SERVER_H_
