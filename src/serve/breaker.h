#ifndef SKYEX_SERVE_BREAKER_H_
#define SKYEX_SERVE_BREAKER_H_

// Circuit breaker around the linker: when the recent link-job failure
// rate (deadline expiries, linker faults, watchdog trips) blows the
// budget, the breaker opens and the server sheds /v1/link* load with
// 503 + a *jittered* Retry-After — deterministic backoff would herd
// every shed client back in the same instant. After `open_ms` the
// breaker admits a single half-open probe; its outcome decides between
// closing again and another open period.

#include <cstdint>
#include <mutex>
#include <vector>

namespace skyex::serve {

struct CircuitBreakerOptions {
  bool enabled = true;
  size_t window = 64;              // sliding window of job outcomes
  size_t min_samples = 8;          // no verdict before this many
  double failure_threshold = 0.5;  // open at >= this failure rate
  int open_ms = 1000;              // open duration before the probe
  int max_retry_after_s = 4;       // jitter range of Retry-After
  uint64_t seed = 0x5eedb4ea;      // jitter RNG stream
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// Admission check at `now_ms` (a steady-clock reading). False means
  /// shed this request. In the half-open state exactly one caller wins
  /// the probe slot; everyone else is shed until its outcome lands.
  bool Admit(int64_t now_ms);

  /// Outcome of an admitted link job.
  void RecordSuccess(int64_t now_ms);
  void RecordFailure(int64_t now_ms);

  /// Outcome that says nothing about linker health (e.g. 429
  /// backpressure after admission): releases a half-open probe slot
  /// without closing or reopening, and leaves the window untouched.
  void RecordNeutral(int64_t now_ms);

  /// Forces the breaker open (the watchdog's wedged-linker signal).
  void ForceOpen(int64_t now_ms);

  State state(int64_t now_ms);

  /// Full-jittered Retry-After in seconds: uniform in
  /// [1, max_retry_after_s], deterministic in the breaker's seed and
  /// shed count.
  int RetryAfterSeconds();

  /// Times the breaker transitioned Closed/HalfOpen -> Open.
  uint64_t opens() const;

  const char* StateName(int64_t now_ms);

 private:
  void Open(int64_t now_ms);          // mutex held
  void MaybeHalfOpen(int64_t now_ms); // mutex held

  CircuitBreakerOptions options_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  std::vector<uint8_t> outcomes_;  // ring buffer: 1 = failure
  size_t next_ = 0;
  size_t filled_ = 0;
  size_t failures_ = 0;
  int64_t opened_at_ms_ = 0;
  bool probe_in_flight_ = false;
  uint64_t opens_ = 0;
  uint64_t jitter_counter_ = 0;
};

}  // namespace skyex::serve

#endif  // SKYEX_SERVE_BREAKER_H_
