#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace skyex::serve {

namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left <= 0 ? 0 : static_cast<int>(std::min<long long>(left, 100));
}

bool Expired(Clock::time_point deadline) {
  return Clock::now() >= deadline;
}

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits a CRLF-terminated header block into a header map; false on a
/// malformed line. `first_line` receives the request/status line.
bool ParseHeaderBlock(std::string_view block, std::string* first_line,
                      std::map<std::string, std::string>* headers) {
  size_t pos = 0;
  bool first = true;
  while (pos < block.size()) {
    size_t eol = block.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = block.size();
    const std::string_view line = block.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    if (first) {
      *first_line = std::string(line);
      first = false;
      continue;
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    (*headers)[ToLower(std::string(Trim(line.substr(0, colon))))] =
        std::string(Trim(line.substr(colon + 1)));
  }
  return !first;
}

/// Reads from `fd` into `buffer` until the header terminator appears,
/// then `body_len(headers_end)` more bytes are present. Returns a
/// ReadStatus; kOk leaves the full message (and possibly more) in
/// `buffer` with `*headers_end` just past the "\r\n\r\n".
ReadStatus ReadMessage(int fd, std::string* buffer, size_t* headers_end,
                       const HttpReadOptions& options,
                       size_t* content_length,
                       const std::map<std::string, std::string>** unused) {
  (void)unused;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options.timeout_ms);
  char chunk[8192];
  // Phase 1: headers.
  size_t scanned = 0;
  for (;;) {
    const size_t from = scanned > 3 ? scanned - 3 : 0;
    const size_t end = buffer->find("\r\n\r\n", from);
    if (end != std::string::npos) {
      *headers_end = end + 4;
      break;
    }
    scanned = buffer->size();
    if (buffer->size() > options.max_header_bytes) {
      return ReadStatus::kMalformed;
    }
    if (Expired(deadline)) {
      return buffer->empty() ? ReadStatus::kClosed : ReadStatus::kTimeout;
    }
    if (buffer->empty() && options.abort_idle != nullptr &&
        options.abort_idle->load(std::memory_order_relaxed)) {
      return ReadStatus::kClosed;
    }
    const long n =
        ReadWithTimeout(fd, chunk, sizeof(chunk), RemainingMs(deadline));
    if (n == kIoError) return ReadStatus::kError;
    if (n == 0) {
      return buffer->empty() ? ReadStatus::kClosed : ReadStatus::kError;
    }
    if (n > 0) buffer->append(chunk, static_cast<size_t>(n));
  }
  // Phase 2: body (Content-Length only; no chunked support).
  std::string first_line;
  std::map<std::string, std::string> headers;
  if (!ParseHeaderBlock(std::string_view(*buffer).substr(0, *headers_end),
                        &first_line, &headers)) {
    return ReadStatus::kMalformed;
  }
  size_t body_len = 0;
  const auto it = headers.find("content-length");
  if (it != headers.end()) {
    char* endp = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &endp, 10);
    if (endp == it->second.c_str() || *endp != '\0') {
      return ReadStatus::kMalformed;
    }
    body_len = static_cast<size_t>(v);
  } else if (headers.count("transfer-encoding") > 0) {
    return ReadStatus::kMalformed;
  }
  *content_length = body_len;
  if (body_len > options.max_body) return ReadStatus::kTooLarge;
  while (buffer->size() < *headers_end + body_len) {
    if (Expired(deadline)) return ReadStatus::kTimeout;
    const long n =
        ReadWithTimeout(fd, chunk, sizeof(chunk), RemainingMs(deadline));
    if (n == kIoError || n == 0) return ReadStatus::kError;
    if (n > 0) buffer->append(chunk, static_cast<size_t>(n));
  }
  return ReadStatus::kOk;
}

}  // namespace

bool HttpRequest::KeepAlive() const {
  const auto it = headers.find("connection");
  if (it == headers.end()) return true;  // HTTP/1.1 default
  return ToLower(it->second) != "close";
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

ReadStatus ReadHttpRequest(int fd, HttpRequest* out, std::string* leftover,
                           const HttpReadOptions& options) {
  std::string buffer = std::move(*leftover);
  leftover->clear();
  size_t headers_end = 0;
  size_t body_len = 0;
  const ReadStatus status =
      ReadMessage(fd, &buffer, &headers_end, options, &body_len, nullptr);
  if (status != ReadStatus::kOk) return status;

  std::string request_line;
  out->headers.clear();
  if (!ParseHeaderBlock(std::string_view(buffer).substr(0, headers_end),
                        &request_line, &out->headers)) {
    return ReadStatus::kMalformed;
  }
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return ReadStatus::kMalformed;
  const std::string_view version =
      std::string_view(request_line).substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return ReadStatus::kMalformed;
  out->method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t q = target.find('?');
  if (q == std::string::npos) {
    out->path = std::move(target);
    out->query.clear();
  } else {
    out->path = target.substr(0, q);
    out->query = target.substr(q + 1);
  }
  out->body = buffer.substr(headers_end, body_len);
  *leftover = buffer.substr(headers_end + body_len);
  return ReadStatus::kOk;
}

bool WriteHttpResponse(int fd, const HttpResponse& response, bool close,
                       int timeout_ms) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += StatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += close ? "close" : "keep-alive";
  out += "\r\n";
  for (const auto& [key, value] : response.extra_headers) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return WriteAll(fd, out.data(), out.size(), timeout_ms);
}

HttpClient::HttpClient(const std::string& host, uint16_t port,
                       int timeout_ms)
    : fd_(ConnectTcp(host, port, timeout_ms)),
      host_(host),
      timeout_ms_(timeout_ms) {}

std::optional<HttpResponse> HttpClient::Request(
    const std::string& method, const std::string& path,
    const std::string& body, const std::string& content_type,
    const std::vector<std::pair<std::string, std::string>>&
        extra_headers) {
  if (!fd_.valid()) return std::nullopt;
  std::string out;
  out.reserve(body.size() + 192);
  out += method;
  out += ' ';
  out += path;
  out += " HTTP/1.1\r\nHost: ";
  out += host_;
  out += "\r\n";
  if (!body.empty() || method == "POST") {
    out += "Content-Type: ";
    out += content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\n";
  }
  for (const auto& [key, value] : extra_headers) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  if (!WriteAll(fd_.get(), out.data(), out.size(), timeout_ms_)) {
    fd_.Reset();
    return std::nullopt;
  }

  std::string buffer = std::move(leftover_);
  leftover_.clear();
  HttpReadOptions options;
  options.timeout_ms = timeout_ms_;
  options.max_body = 64 << 20;
  size_t headers_end = 0;
  size_t body_len = 0;
  if (ReadMessage(fd_.get(), &buffer, &headers_end, options, &body_len,
                  nullptr) != ReadStatus::kOk) {
    fd_.Reset();
    return std::nullopt;
  }
  std::string status_line;
  std::map<std::string, std::string> headers;
  if (!ParseHeaderBlock(std::string_view(buffer).substr(0, headers_end),
                        &status_line, &headers)) {
    fd_.Reset();
    return std::nullopt;
  }
  // "HTTP/1.1 200 OK"
  const size_t sp = status_line.find(' ');
  if (sp == std::string::npos) {
    fd_.Reset();
    return std::nullopt;
  }
  HttpResponse response;
  response.status = std::atoi(status_line.c_str() + sp + 1);
  const auto ct = headers.find("content-type");
  if (ct != headers.end()) response.content_type = ct->second;
  for (auto& [key, value] : headers) {
    response.extra_headers.emplace_back(key, value);
  }
  response.body = buffer.substr(headers_end, body_len);
  leftover_ = buffer.substr(headers_end + body_len);
  const auto conn = headers.find("connection");
  if (conn != headers.end() && ToLower(conn->second) == "close") {
    fd_.Reset();
  }
  return response;
}

}  // namespace skyex::serve
