#include "serve/breaker.h"

#include <algorithm>

#include "obs/log.h"
#include "obs/metrics.h"
#include "par/rng.h"

namespace skyex::serve {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options),
      outcomes_(std::max<size_t>(1, options.window), 0) {}

bool CircuitBreaker::Admit(int64_t now_ms) {
  if (!options_.enabled) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  MaybeHalfOpen(now_ms);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(int64_t now_ms) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  MaybeHalfOpen(now_ms);
  if (state_ == State::kHalfOpen) {
    // Probe succeeded: close and forget the bad window.
    state_ = State::kClosed;
    probe_in_flight_ = false;
    std::fill(outcomes_.begin(), outcomes_.end(), 0);
    filled_ = 0;
    failures_ = 0;
    next_ = 0;
    SKYEX_LOG_INFO("serve/breaker", "closed after successful probe");
    SKYEX_GAUGE_SET("serve/breaker_open", 0.0);
    return;
  }
  if (state_ != State::kClosed) return;
  failures_ -= outcomes_[next_];
  outcomes_[next_] = 0;
  next_ = (next_ + 1) % outcomes_.size();
  filled_ = std::min(filled_ + 1, outcomes_.size());
}

void CircuitBreaker::RecordFailure(int64_t now_ms) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  MaybeHalfOpen(now_ms);
  if (state_ == State::kHalfOpen) {
    probe_in_flight_ = false;
    Open(now_ms);
    return;
  }
  if (state_ != State::kClosed) return;
  failures_ -= outcomes_[next_];
  outcomes_[next_] = 1;
  failures_ += 1;
  next_ = (next_ + 1) % outcomes_.size();
  filled_ = std::min(filled_ + 1, outcomes_.size());
  if (filled_ >= options_.min_samples &&
      static_cast<double>(failures_) >=
          options_.failure_threshold * static_cast<double>(filled_)) {
    Open(now_ms);
  }
}

void CircuitBreaker::RecordNeutral(int64_t now_ms) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  MaybeHalfOpen(now_ms);
  if (state_ == State::kHalfOpen) probe_in_flight_ = false;
}

void CircuitBreaker::ForceOpen(int64_t now_ms) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  probe_in_flight_ = false;
  Open(now_ms);
}

CircuitBreaker::State CircuitBreaker::state(int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  MaybeHalfOpen(now_ms);
  return state_;
}

int CircuitBreaker::RetryAfterSeconds() {
  std::lock_guard<std::mutex> lock(mutex_);
  const int range = std::max(1, options_.max_retry_after_s);
  const uint64_t r = par::SplitMix64(options_.seed ^ ++jitter_counter_);
  return 1 + static_cast<int>(r % static_cast<uint64_t>(range));
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return opens_;
}

const char* CircuitBreaker::StateName(int64_t now_ms) {
  switch (state(now_ms)) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half_open";
  }
  return "closed";
}

void CircuitBreaker::Open(int64_t now_ms) {
  if (state_ != State::kOpen) {
    ++opens_;
    SKYEX_COUNTER_INC("serve/breaker_opens");
    SKYEX_LOG_WARN("serve/breaker", "breaker opened",
                   {"failures", failures_}, {"window", filled_});
  }
  state_ = State::kOpen;
  opened_at_ms_ = now_ms;
  SKYEX_GAUGE_SET("serve/breaker_open", 1.0);
}

void CircuitBreaker::MaybeHalfOpen(int64_t now_ms) {
  if (state_ == State::kOpen &&
      now_ms - opened_at_ms_ >= options_.open_ms) {
    state_ = State::kHalfOpen;
    probe_in_flight_ = false;
  }
}

}  // namespace skyex::serve
