#ifndef SKYEX_SERVE_SHARD_API_H_
#define SKYEX_SERVE_SHARD_API_H_

// The narrow, message-shaped boundary between the HTTP server and a
// sharded linking backend: entities + a deadline go in, ranked
// LinkResults + per-request shard stats come out. The server knows
// nothing about shard count, placement, or transport; the concrete
// implementation (shard::Router, src/shard/) runs shards in-process
// today, and a multi-process deployment only needs another
// implementation of this interface — the contract already carries
// everything that must cross a process boundary (see docs/serving.md).

#include <cstdint>
#include <string>
#include <vector>

#include "data/spatial_entity.h"
#include "serve/service.h"

namespace skyex::serve {

/// Per-request scatter-gather timing and fan-out stats, the sharded
/// analogue of LinkBatchStats. Times sum over the batch's entities.
struct ShardPhases {
  double scatter_us = 0.0;     // routing + enqueueing onto shard queues
  double shard_link_us = 0.0;  // waiting for shard match results
  double gather_us = 0.0;      // merge + rank of the gathered links
  double extract_us = 0.0;     // candidate scans inside the shards
  double rank_us = 0.0;        // LGM-X scoring inside the shards
  uint32_t shards_touched = 0;  // scatter targets across the batch
  uint32_t shards_failed = 0;   // targets that timed out / errored
};

/// A linking backend behind the scatter-gather seam.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Links each entity in order, like LinkService::LinkMany. A result
  /// whose scatter lost at least one shard carries degraded = true
  /// (partial links, merged = entity when every target failed).
  /// `deadline_ms` ≤ 0 means no deadline; `phases` (optional) receives
  /// the batch's scatter/link/gather timings.
  virtual std::vector<LinkResult> Link(
      const std::vector<data::SpatialEntity>& entities, int deadline_ms,
      ShardPhases* phases) = 0;

  /// Total records across all shards (for /healthz).
  virtual size_t record_count() const = 0;

  virtual size_t num_shards() const = 0;

  /// SaveModel text of the served model (all shards serve one model).
  virtual const std::string& model_text() const = 0;

  /// True when EVERY shard is wedged — with any shard healthy the
  /// router still answers (degraded where coverage is lost).
  virtual bool wedged() const = 0;

  /// Refreshes the per-shard gauges (shard/<id>/...) before a /metrics
  /// scrape.
  virtual void PublishGauges() const = 0;

  /// Cumulative breaker opens across all shards (serve/breaker_opens).
  virtual uint64_t breaker_opens() const = 0;
};

}  // namespace skyex::serve

#endif  // SKYEX_SERVE_SHARD_API_H_
