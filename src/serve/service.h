#ifndef SKYEX_SERVE_SERVICE_H_
#define SKYEX_SERVE_SERVICE_H_

// The linkage service behind the HTTP endpoints: typed request /
// response structs with their JSON forms, a thread-safe wrapper around
// core::IncrementalLinker (whose AddRecord mutates the dataset and must
// be serialized — see core/incremental.h), and the bootstrap that
// turns a dataset + saved model into a calibrated linker.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "data/spatial_entity.h"
#include "obs/json.h"
#include "serve/json_writer.h"

namespace skyex::serve {

/// One record the new entity was linked to.
struct LinkedRecord {
  size_t record = 0;    // index into the served dataset
  uint64_t id = 0;      // the record's own id
  std::string name;
  std::string source;
};

/// Outcome of linking one entity.
struct LinkResult {
  size_t record_index = 0;  // where the new entity landed in the dataset
  std::vector<LinkedRecord> links;
  data::SpatialEntity merged;  // golden record of {entity} ∪ links
};

/// Parses {"entity": {...}} / an entity object into `out`. `name` is
/// required; everything else optional ("source" accepts the names from
/// data::SourceName or an integer). False + `error` on bad input.
bool ParseEntityJson(const obs::json::Value& value,
                     data::SpatialEntity* out, std::string* error);

/// Writes an entity as a JSON object (omits missing attributes).
void WriteEntityJson(json::Writer* writer, const data::SpatialEntity& e);

/// Writes one LinkResult as a JSON object.
void WriteLinkResultJson(json::Writer* writer, const LinkResult& result);

/// Serializes IncrementalLinker access behind one mutex — the write
/// contract of core/incremental.h. All linkage performed by the server
/// funnels through LinkMany (one lock acquisition per micro-batch).
class LinkService {
 public:
  LinkService(core::IncrementalLinker linker, std::string model_text);

  /// Links each entity in order against the (growing) dataset. One
  /// batch = one lock hold = one linker pass.
  std::vector<LinkResult> LinkMany(
      const std::vector<data::SpatialEntity>& entities);

  size_t record_count() const;

  /// SaveModel text of the served model (immutable after construction).
  const std::string& model_text() const { return model_text_; }

 private:
  mutable std::mutex mutex_;
  core::IncrementalLinker linker_;
  const std::string model_text_;
};

/// Builds a LinkService from a dataset and a trained model: blocks the
/// dataset (QuadFlex with coordinates, Cartesian without), extracts
/// LGM-X features, labels every pair with the model, and calibrates the
/// incremental linker's acceptance threshold on the accepted pairs.
/// nullptr + `error` when the model is unusable or no pair is accepted.
std::unique_ptr<LinkService> BootstrapLinkService(
    data::Dataset dataset, core::SkyExTModel model,
    const core::IncrementalLinkerOptions& options, std::string* error);

}  // namespace skyex::serve

#endif  // SKYEX_SERVE_SERVICE_H_
