#ifndef SKYEX_SERVE_SERVICE_H_
#define SKYEX_SERVE_SERVICE_H_

// The linkage service behind the HTTP endpoints: typed request /
// response structs with their JSON forms, a thread-safe wrapper around
// core::IncrementalLinker (whose AddRecord mutates the dataset and must
// be serialized — see core/incremental.h), and the bootstrap that
// turns a dataset + saved model into a calibrated linker.
//
// Besides the full linker path, the service maintains a *degraded
// index*: immutable snapshots (id, source, normalized name, location)
// of every linked record, guarded by its own mutex. When the full path
// is unavailable — deadline expired, linker wedged, breaker open — the
// server can still answer from this index with a cheap
// threshold-on-f_sim match (Jaro-Winkler on normalized names, gated by
// a Haversine radius). Degraded answers are read-only (nothing is
// persisted) and marked "degraded":true in the response.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "data/spatial_entity.h"
#include "obs/json.h"
#include "serve/json_writer.h"

namespace skyex::serve {

/// One record the new entity was linked to.
struct LinkedRecord {
  size_t record = 0;    // index into the served dataset
  uint64_t id = 0;      // the record's own id
  std::string name;
  std::string source;
};

/// Outcome of linking one entity.
struct LinkResult {
  size_t record_index = 0;  // where the new entity landed in the dataset
  std::vector<LinkedRecord> links;
  data::SpatialEntity merged;  // golden record of {entity} ∪ links
  bool degraded = false;       // answered by the fallback path
};

/// One scored candidate link as a shard reports it to the router: the
/// record's position in the *local* shard dataset, the match score
/// (prioritized group sum — see core::ScoredMatch), and a snapshot copy
/// of the record so the router can merge without reaching back into the
/// shard's dataset.
struct ScoredLink {
  size_t record = 0;
  double score = 0.0;
  data::SpatialEntity snapshot;
};

/// Deterministic link ranking shared by the unsharded path and the
/// shard router's gather: strongest score first, ties broken by entity
/// id, then by (global) record index. Keeping one comparator is what
/// makes `--shards=1` responses byte-identical to the unsharded server.
inline bool LinkRankBefore(double score_a, uint64_t id_a, size_t record_a,
                           double score_b, uint64_t id_b, size_t record_b) {
  if (score_a != score_b) return score_a > score_b;
  if (id_a != id_b) return id_a < id_b;
  return record_a < record_b;
}

/// Knobs of the degraded fallback matcher.
struct DegradedOptions {
  double f_sim_threshold = 0.9;  // Jaro-Winkler on normalized names
  double radius_m = 500.0;       // Haversine gate when both have coords
};

/// Parses {"entity": {...}} / an entity object into `out`. `name` is
/// required; everything else optional ("source" accepts the names from
/// data::SourceName or an integer). False + `error` on bad input —
/// including non-finite lat/lon.
bool ParseEntityJson(const obs::json::Value& value,
                     data::SpatialEntity* out, std::string* error);

/// Writes an entity as a JSON object (omits missing attributes).
void WriteEntityJson(json::Writer* writer, const data::SpatialEntity& e);

/// Writes one LinkResult as a JSON object. When `request_id` is given
/// it is written as a leading "request_id" member (single-entity
/// responses echo the id in the body; see docs/serving.md).
void WriteLinkResultJson(json::Writer* writer, const LinkResult& result,
                         const std::string* request_id = nullptr);

/// Batch-level phase timing of LinkMany, for the flight recorder:
/// `extract_us` sums the candidate scans plus the stage-1 text-state
/// lookup + sketch pre-filter, `rank_us` the LGM-X scoring +
/// skyline-key acceptance, across the whole batch. `prefilter_us`
/// breaks the stage-1 share out of `extract_us`; the counts aggregate
/// the linker's per-record AddRecordStats.
struct LinkBatchStats {
  double extract_us = 0.0;
  double prefilter_us = 0.0;
  double rank_us = 0.0;
  size_t prefilter_dropped = 0;
  size_t lru_hits = 0;
  size_t lru_misses = 0;
};

/// Serializes IncrementalLinker access behind one mutex — the write
/// contract of core/incremental.h. All linkage performed by the server
/// funnels through LinkMany (one lock acquisition per micro-batch).
class LinkService {
 public:
  LinkService(core::IncrementalLinker linker, std::string model_text,
              DegradedOptions degraded_options = {});

  /// Links each entity in order against the (growing) dataset. One
  /// batch = one lock hold = one linker pass. `stats` (optional)
  /// receives the batch's phase timings.
  std::vector<LinkResult> LinkMany(
      const std::vector<data::SpatialEntity>& entities,
      LinkBatchStats* stats = nullptr);

  /// Shard-side half of a scatter-gather link: scores `entity` against
  /// this service's dataset and returns the accepted links (ascending
  /// local index order, unranked — the router ranks after gathering).
  /// When `persist` is true the entity is appended afterwards, exactly
  /// like AddRecord; the owner shard persists, peers only match.
  std::vector<ScoredLink> MatchScored(const data::SpatialEntity& entity,
                                      bool persist,
                                      core::AddRecordStats* stats = nullptr);

  /// Read-only fallback: matches each entity against the degraded
  /// index by name similarity + radius gate. Never touches the linker
  /// or its mutex, so it stays responsive while the linker is wedged.
  /// Results carry degraded = true and are NOT persisted.
  std::vector<LinkResult> LinkDegraded(
      const std::vector<data::SpatialEntity>& entities) const;

  size_t record_count() const;

  /// SaveModel text of the served model (immutable after construction).
  const std::string& model_text() const { return model_text_; }

  /// Shard identity stamped into audit records (0 unsharded). Set once
  /// at bootstrap, before serving starts.
  void set_shard_id(uint32_t shard_id) { shard_id_ = shard_id; }
  uint32_t shard_id() const { return shard_id_; }

 private:
  struct DegradedEntry {
    uint64_t id = 0;
    std::string source;
    std::string name;             // original, for the response
    std::string normalized_name;  // match key
    geo::GeoPoint location;
  };
  static DegradedEntry MakeDegradedEntry(const data::SpatialEntity& e);

  mutable std::mutex mutex_;
  core::IncrementalLinker linker_;
  const std::string model_text_;
  uint32_t shard_id_ = 0;

  // Separate mutex: a wedged linker thread stalls inside mutex_, and
  // the degraded path must not queue behind it.
  mutable std::mutex degraded_mutex_;
  std::vector<DegradedEntry> degraded_index_;
  const DegradedOptions degraded_options_;
};

/// Builds a LinkService from a dataset and a trained model: blocks the
/// dataset (QuadFlex with coordinates, Cartesian without), extracts
/// LGM-X features, labels every pair with the model, and calibrates the
/// incremental linker's acceptance threshold on the accepted pairs.
/// Rejects models whose preference reads feature indices outside the
/// LGM-X schema (a corrupt or mismatched model file would otherwise
/// read out of bounds on every request). nullptr + `error` when the
/// model is unusable or no pair is accepted.
std::unique_ptr<LinkService> BootstrapLinkService(
    data::Dataset dataset, core::SkyExTModel model,
    const core::IncrementalLinkerOptions& options, std::string* error);

/// Sharded variant: runs the SAME global calibration once on the full
/// dataset, then builds one LinkService per partition, each holding its
/// partition's records plus the full-corpus extractor and the global
/// acceptance threshold (so a pair links on a shard iff it would link
/// unsharded). `partitions[s]` lists dataset indices owned by shard s —
/// every index in exactly one partition, original order preserved.
/// `model_text` (optional) receives the served model text. Empty vector
/// + `error` on failure.
std::vector<std::unique_ptr<LinkService>> BootstrapShardedLinkServices(
    data::Dataset dataset, core::SkyExTModel model,
    const core::IncrementalLinkerOptions& options,
    const std::vector<std::vector<size_t>>& partitions,
    std::string* model_text, std::string* error);

}  // namespace skyex::serve

#endif  // SKYEX_SERVE_SERVICE_H_
