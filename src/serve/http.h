#ifndef SKYEX_SERVE_HTTP_H_
#define SKYEX_SERVE_HTTP_H_

// Minimal HTTP/1.1 over the net.h socket helpers: enough protocol for
// the linkage service and its load generator — request line + headers,
// Content-Length bodies, keep-alive. No chunked transfer encoding, no
// TLS, no pipelining.

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/net.h"

namespace skyex::serve {

/// A parsed request. Header names are lowercased; `path` excludes the
/// query string (kept separately, unparsed).
struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;
  std::map<std::string, std::string> headers;
  std::string body;

  bool KeepAlive() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
};

const char* StatusReason(int status);

enum class ReadStatus {
  kOk,
  kClosed,     // clean EOF (or idle-abort) before any request bytes
  kTimeout,    // deadline hit mid-request
  kTooLarge,   // Content-Length beyond `max_body` (body not consumed)
  kMalformed,  // unparsable request line / headers
  kError,      // socket error
};

struct HttpReadOptions {
  int timeout_ms = 5000;
  size_t max_body = 1 << 20;
  size_t max_header_bytes = 16 * 1024;
  /// When non-null and set, an idle wait (no request bytes received
  /// yet) aborts with kClosed — the server's drain path. A partially
  /// received request keeps reading until done or deadline.
  const std::atomic<bool>* abort_idle = nullptr;
};

/// Reads one request from `fd`. `leftover` carries bytes read past the
/// end of the previous request on this connection (keep-alive); it is
/// consumed first and refilled on return.
ReadStatus ReadHttpRequest(int fd, HttpRequest* out, std::string* leftover,
                           const HttpReadOptions& options);

/// Serializes and writes one response. `close` controls the Connection
/// header. False on socket timeout/error.
bool WriteHttpResponse(int fd, const HttpResponse& response, bool close,
                       int timeout_ms);

/// Blocking HTTP/1.1 client for the loadgen, tests and smoke checks.
/// One connection, sequential requests, keep-alive by default.
class HttpClient {
 public:
  /// Connects; `ok()` reports success.
  HttpClient(const std::string& host, uint16_t port, int timeout_ms = 5000);

  bool ok() const { return fd_.valid(); }

  /// Sends a request and reads the response. nullopt on connection
  /// failure (the connection is closed and must be re-established).
  /// `extra_headers` are written verbatim after Host/Content-* (e.g.
  /// {"X-Request-Id", "abc123"} to hand the server a request id).
  std::optional<HttpResponse> Request(
      const std::string& method, const std::string& path,
      const std::string& body = "",
      const std::string& content_type = "application/json",
      const std::vector<std::pair<std::string, std::string>>&
          extra_headers = {});

 private:
  UniqueFd fd_;
  std::string host_;
  std::string leftover_;
  int timeout_ms_;
};

}  // namespace skyex::serve

#endif  // SKYEX_SERVE_HTTP_H_
