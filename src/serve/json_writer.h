#ifndef SKYEX_SERVE_JSON_WRITER_H_
#define SKYEX_SERVE_JSON_WRITER_H_

// Small streaming JSON writer — the write-side counterpart of the
// obs/json.h parser. Comma placement and nesting are handled by a
// context stack; values are appended to one growing string. The writer
// does not validate call order beyond what the stack gives (e.g. a Key
// outside an object is a programming error, checked by assert).

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace skyex::serve::json {

/// Escapes a string body for inclusion between double quotes.
std::string Escape(std::string_view s);

class Writer {
 public:
  Writer& BeginObject() {
    Prefix();
    out_ += '{';
    stack_.push_back(State::kObjectFirst);
    return *this;
  }
  Writer& EndObject() {
    assert(!stack_.empty());
    out_ += '}';
    stack_.pop_back();
    return *this;
  }
  Writer& BeginArray() {
    Prefix();
    out_ += '[';
    stack_.push_back(State::kArrayFirst);
    return *this;
  }
  Writer& EndArray() {
    assert(!stack_.empty());
    out_ += ']';
    stack_.pop_back();
    return *this;
  }
  Writer& Key(std::string_view key) {
    assert(!stack_.empty());
    Prefix();
    out_ += '"';
    out_ += Escape(key);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }
  Writer& String(std::string_view value) {
    Prefix();
    out_ += '"';
    out_ += Escape(value);
    out_ += '"';
    return *this;
  }
  Writer& Number(double value);
  Writer& Int(int64_t value) {
    Prefix();
    out_ += std::to_string(value);
    return *this;
  }
  Writer& Uint(uint64_t value) {
    Prefix();
    out_ += std::to_string(value);
    return *this;
  }
  Writer& Bool(bool value) {
    Prefix();
    out_ += value ? "true" : "false";
    return *this;
  }
  Writer& Null() {
    Prefix();
    out_ += "null";
    return *this;
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  enum class State : uint8_t { kObjectFirst, kObject, kArrayFirst, kArray };

  // Inserts the separating comma where the context requires one.
  void Prefix() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (stack_.empty()) return;
    State& state = stack_.back();
    switch (state) {
      case State::kObjectFirst: state = State::kObject; break;
      case State::kArrayFirst: state = State::kArray; break;
      case State::kObject:
      case State::kArray: out_ += ','; break;
    }
  }

  std::string out_;
  std::vector<State> stack_;
  bool pending_value_ = false;
};

}  // namespace skyex::serve::json

#endif  // SKYEX_SERVE_JSON_WRITER_H_
