#ifndef SKYEX_FEATURES_LGM_X_H_
#define SKYEX_FEATURES_LGM_X_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/pair_store.h"
#include "data/spatial_entity.h"
#include "lgm/lgm_sim.h"
#include "ml/dataset_view.h"

namespace skyex::features {

/// Options of the LGM-X extractor.
struct LgmXOptions {
  /// Distances at/above this cap score 0 on the spatial feature. The
  /// default matches the QuadFlex blocking ceiling, so the feature keeps
  /// resolution inside the blocked-pair distance range instead of
  /// saturating near 1.
  double max_distance_m = 300.0;
  /// Address-number deltas at/above this cap score 0.
  int max_number_delta = 50;
  /// Cap on this extractor's fan-out over the shared thread pool during
  /// bulk extraction (0 = use the whole pool). Does not grow the pool.
  size_t num_threads = 0;
};

/// The LGM-X feature extractor (Section 4.2.2 of the paper): 88
/// similarity features per pair of spatial entities — see
/// LgmXFeatureNames() for the exact schema. A missing attribute on either
/// side yields 0 for all of its features, as specified by the paper.
class LgmXExtractor {
 public:
  /// Per-entity normalized text state: the extractor's unit of reuse. The
  /// serving path caches these (core/incremental.cc keeps an LRU) so repeat
  /// entities skip normalization entirely.
  struct EntityText {
    std::string name_norm;
    std::string name_sorted;
    std::string addr_norm;
    std::string addr_sorted;
  };

  /// `name_sim` / `addr_sim` carry the frequent-term dictionaries and
  /// LGM-Sim parameters for the two textual attributes.
  LgmXExtractor(lgm::LgmSim name_sim, lgm::LgmSim addr_sim,
                LgmXOptions options = {});

  /// Builds an extractor whose frequent-term dictionaries are gathered
  /// from the names and addresses of `dataset` (how the paper builds the
  /// LGM-Sim term lists from the training corpus).
  static LgmXExtractor FromCorpus(const data::Dataset& dataset,
                                  LgmXOptions options = {},
                                  lgm::LgmSimConfig config = {});

  const std::vector<std::string>& feature_names() const { return names_; }
  size_t feature_count() const { return names_.size(); }

  /// Normalizes one entity's textual attributes (name/address, plus their
  /// token-sorted forms).
  static EntityText ComputeEntityText(const data::SpatialEntity& e);

  /// Computes one feature row (out must hold feature_count() doubles).
  void ExtractRow(const data::SpatialEntity& a, const data::SpatialEntity& b,
                  double* out) const;

  /// Same row, from pre-normalized text state (the serving hot path).
  void RowFromCache(const data::SpatialEntity& a, const EntityText& ta,
                    const data::SpatialEntity& b, const EntityText& tb,
                    double* out) const;

  /// Bulk extraction over candidate pairs, fanned out on the shared
  /// par::ThreadPool. Normalized attribute strings are cached per entity.
  ml::FeatureMatrix Extract(const data::Dataset& dataset,
                            const std::vector<geo::CandidatePair>& pairs) const;

  /// Stage-1 sketch pre-filter for the batch path: returns the pairs whose
  /// sketch estimate (features::EstimatePair over per-entity bigram
  /// sketches) reaches `threshold`, preserving order. `threshold <= 0`
  /// returns the input unchanged — the bit-identity guarantee of
  /// --prefilter-threshold=0. `dropped`, when non-null, receives the number
  /// of discarded pairs. Adds to the `extract/prefilter_dropped` counter.
  std::vector<geo::CandidatePair> PrefilterPairs(
      const data::Dataset& dataset,
      const std::vector<geo::CandidatePair>& pairs, double threshold,
      size_t* dropped = nullptr) const;

 private:
  // Computes the features of one textual attribute into out[0..42].
  void TextFeatures(const lgm::LgmSim& sim, const std::string& a_norm,
                    const std::string& a_sorted, const std::string& b_norm,
                    const std::string& b_sorted, double* out) const;

  lgm::LgmSim name_sim_;
  lgm::LgmSim addr_sim_;
  LgmXOptions options_;
  std::vector<std::string> names_;
  // Registry-position maps resolved once at construction: group (ii)
  // reuses group (i) raw scores via sortable_to_basic_, and the pre-sorted
  // measure ("jaro_winkler_sorted") is computed from the cached sorted
  // strings via the plain Jaro-Winkler entry.
  std::vector<size_t> sortable_to_basic_;
  size_t sorted_jw_basic_index_;
  size_t jw_basic_index_;
};

}  // namespace skyex::features

#endif  // SKYEX_FEATURES_LGM_X_H_
