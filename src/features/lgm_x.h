#ifndef SKYEX_FEATURES_LGM_X_H_
#define SKYEX_FEATURES_LGM_X_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/pair_store.h"
#include "data/spatial_entity.h"
#include "lgm/lgm_sim.h"
#include "ml/dataset_view.h"

namespace skyex::features {

/// Options of the LGM-X extractor.
struct LgmXOptions {
  /// Distances at/above this cap score 0 on the spatial feature. The
  /// default matches the QuadFlex blocking ceiling, so the feature keeps
  /// resolution inside the blocked-pair distance range instead of
  /// saturating near 1.
  double max_distance_m = 300.0;
  /// Address-number deltas at/above this cap score 0.
  int max_number_delta = 50;
  /// Cap on this extractor's fan-out over the shared thread pool during
  /// bulk extraction (0 = use the whole pool). Does not grow the pool.
  size_t num_threads = 0;
};

/// The LGM-X feature extractor (Section 4.2.2 of the paper): 88
/// similarity features per pair of spatial entities — see
/// LgmXFeatureNames() for the exact schema. A missing attribute on either
/// side yields 0 for all of its features, as specified by the paper.
class LgmXExtractor {
 public:
  /// `name_sim` / `addr_sim` carry the frequent-term dictionaries and
  /// LGM-Sim parameters for the two textual attributes.
  LgmXExtractor(lgm::LgmSim name_sim, lgm::LgmSim addr_sim,
                LgmXOptions options = {});

  /// Builds an extractor whose frequent-term dictionaries are gathered
  /// from the names and addresses of `dataset` (how the paper builds the
  /// LGM-Sim term lists from the training corpus).
  static LgmXExtractor FromCorpus(const data::Dataset& dataset,
                                  LgmXOptions options = {},
                                  lgm::LgmSimConfig config = {});

  const std::vector<std::string>& feature_names() const { return names_; }
  size_t feature_count() const { return names_.size(); }

  /// Computes one feature row (out must hold feature_count() doubles).
  void ExtractRow(const data::SpatialEntity& a, const data::SpatialEntity& b,
                  double* out) const;

  /// Bulk extraction over candidate pairs, fanned out on the shared
  /// par::ThreadPool. Normalized attribute strings are cached per entity.
  ml::FeatureMatrix Extract(const data::Dataset& dataset,
                            const std::vector<geo::CandidatePair>& pairs) const;

 private:
  struct EntityText {
    std::string name_norm;
    std::string name_sorted;
    std::string addr_norm;
    std::string addr_sorted;
  };

  // Computes the features of one textual attribute into out[0..42].
  void TextFeatures(const lgm::LgmSim& sim, const std::string& a_norm,
                    const std::string& a_sorted, const std::string& b_norm,
                    const std::string& b_sorted, double* out) const;
  void RowFromCache(const data::SpatialEntity& a, const EntityText& ta,
                    const data::SpatialEntity& b, const EntityText& tb,
                    double* out) const;

  lgm::LgmSim name_sim_;
  lgm::LgmSim addr_sim_;
  LgmXOptions options_;
  std::vector<std::string> names_;
};

}  // namespace skyex::features

#endif  // SKYEX_FEATURES_LGM_X_H_
