#ifndef SKYEX_FEATURES_FEATURE_SCHEMA_H_
#define SKYEX_FEATURES_FEATURE_SCHEMA_H_

#include <string>
#include <vector>

namespace skyex::features {

/// Builds the ordered list of LGM-X feature names (Table 1 of the paper):
/// per textual attribute (name, addr) — 14 basic similarities, 13 custom-
/// sorted similarities, 13 LGM-Sim-based similarities and 3 individual
/// list scores — plus the address-number feature and the spatial feature.
/// 2·(14+13+13+3) + 1 + 1 = 88 features.
std::vector<std::string> LgmXFeatureNames();

/// Number of LGM-X features (88).
size_t LgmXFeatureCount();

}  // namespace skyex::features

#endif  // SKYEX_FEATURES_FEATURE_SCHEMA_H_
