#ifndef SKYEX_FEATURES_SKETCH_H_
#define SKYEX_FEATURES_SKETCH_H_

#include <array>
#include <cstdint>
#include <string_view>

// Per-entity set-sketch signatures for the stage-1 extraction pre-filter.
//
// A TokenSketch is a bottom-k sketch (k = kSketchRegisters) of the 64-bit
// hashes of the character bigrams of a normalized string: the k smallest
// distinct hash values, kept during construction with the tournament
// max-tree idiom of the setsketch/HLL snippet (a binary tree above the
// registers tracks the current maximum, so a non-improving hash is rejected
// by one root comparison and an improving one walks a log₂(k) path).
//
// Two sketches estimate the Jaccard resemblance of the underlying bigram
// sets: among the k smallest hashes of the union, the fraction present in
// both sketches. For strings with fewer than k distinct bigrams (most names
// and addresses) the sketch holds the whole set and the estimate is exact.
//
// The serving pre-filter (core/incremental.cc) and the batch pre-filter
// (features/lgm_x.cc) drop a candidate pair when EstimatePair — the best
// estimate over the attributes comparable on both sides — falls below
// --prefilter-threshold. Threshold 0 never drops anything, which keeps the
// pipeline bit-identical to the unfiltered one (test-pinned).

namespace skyex::features {

inline constexpr size_t kSketchRegisters = 32;

struct TokenSketch {
  // The k smallest distinct bigram hashes, ascending; empty slots (when the
  // string has fewer distinct bigrams) hold kEmptySlot at the tail.
  static constexpr uint64_t kEmptySlot = ~uint64_t{0};
  std::array<uint64_t, kSketchRegisters> values;
  uint32_t count = 0;  // populated registers

  bool empty() const { return count == 0; }
};

/// Sketch of the character bigrams of a normalized string (token-crossing
/// bigrams included: spaces participate, so word boundaries count).
TokenSketch BuildTokenSketch(std::string_view normalized);

/// Bottom-k Jaccard estimate of the bigram resemblance of the two sketched
/// strings, in [0, 1]. Exact when both strings have < k distinct bigrams.
/// Returns 0 when exactly one side is empty, 1 when both are.
double EstimateResemblance(const TokenSketch& a, const TokenSketch& b);

/// Name + address sketches of an entity, built from the same normalized
/// strings the extractor uses (EntityText::name_norm / addr_norm).
struct EntitySketch {
  TokenSketch name;
  TokenSketch addr;
};

/// The pre-filter's pair score: the MAXIMUM resemblance estimate over the
/// attributes present on both sides (name and/or address), so a pair is
/// only droppable when every shared attribute looks dissimilar — a true
/// match with a corrupted name but a matching address survives. With no
/// comparable attribute the score is 1.0 (never drop a pair the sketches
/// know nothing about — keeps the filter recall-safe for missing text).
double EstimatePair(const EntitySketch& a, const EntitySketch& b);

}  // namespace skyex::features

#endif  // SKYEX_FEATURES_SKETCH_H_
