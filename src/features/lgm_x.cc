#include "features/lgm_x.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "features/feature_schema.h"
#include "features/sketch.h"
#include "geo/distance.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prof/prof.h"
#include "par/parallel_for.h"
#include "text/edit_distance.h"
#include "text/normalize.h"
#include "text/similarity_registry.h"
#include "text/tokenize.h"

namespace skyex::features {

namespace {

// Stack-buffer capacity for group (i) raw scores; the registry is fixed at
// 14 measures (feature_schema pins the count), so this has ample headroom.
constexpr size_t kRawBufferCap = 32;

size_t IndexOfMeasure(const std::vector<text::NamedSimilarity>& table,
                      std::string_view name) {
  for (size_t i = 0; i < table.size(); ++i) {
    if (table[i].name == name) return i;
  }
  throw std::logic_error("similarity registry is missing measure: " +
                         std::string(name));
}

}  // namespace

LgmXExtractor::LgmXExtractor(lgm::LgmSim name_sim, lgm::LgmSim addr_sim,
                             LgmXOptions options)
    : name_sim_(std::move(name_sim)),
      addr_sim_(std::move(addr_sim)),
      options_(options),
      names_(LgmXFeatureNames()) {
  const auto& basic = text::BasicSimilarities();
  const auto& sortable = text::SortableSimilarities();
  if (basic.size() > kRawBufferCap) {
    throw std::logic_error("similarity registry outgrew the raw buffer");
  }
  sortable_to_basic_.reserve(sortable.size());
  for (const text::NamedSimilarity& m : sortable) {
    sortable_to_basic_.push_back(IndexOfMeasure(basic, m.name));
  }
  sorted_jw_basic_index_ = IndexOfMeasure(basic, "jaro_winkler_sorted");
  jw_basic_index_ = IndexOfMeasure(basic, "jaro_winkler");
}

LgmXExtractor LgmXExtractor::FromCorpus(const data::Dataset& dataset,
                                        LgmXOptions options,
                                        lgm::LgmSimConfig config) {
  std::vector<std::string> name_corpus;
  std::vector<std::string> addr_corpus;
  name_corpus.reserve(dataset.size());
  addr_corpus.reserve(dataset.size());
  for (const data::SpatialEntity& e : dataset.entities) {
    if (!e.name.empty()) name_corpus.push_back(text::Normalize(e.name));
    if (!e.address_name.empty()) {
      addr_corpus.push_back(text::Normalize(e.address_name));
    }
  }
  lgm::FrequentTermDictionary::Options dict_options;
  dict_options.min_count = std::max<size_t>(3, dataset.size() / 500);
  return LgmXExtractor(
      lgm::LgmSim(lgm::FrequentTermDictionary::Build(name_corpus,
                                                     dict_options),
                  config),
      lgm::LgmSim(lgm::FrequentTermDictionary::Build(addr_corpus,
                                                     dict_options),
                  config),
      options);
}

void LgmXExtractor::TextFeatures(const lgm::LgmSim& sim,
                                 const std::string& a_norm,
                                 const std::string& a_sorted,
                                 const std::string& b_norm,
                                 const std::string& b_sorted,
                                 double* out) const {
  size_t k = 0;
  // Group (i): basic similarities on the normalized strings. Raw scores
  // are kept on the stack so group (ii) can reuse them by registry
  // position. The pre-sorted measure is Jaro-Winkler over the cached
  // sorted strings — a_sorted IS SortTokens(a_norm), so this is the same
  // value without re-tokenizing per pair.
  const auto& basic = text::BasicSimilarities();
  const text::SimilarityFn jw = basic[jw_basic_index_].fn;
  double raw[kRawBufferCap];
  for (size_t m = 0; m < basic.size(); ++m) {
    raw[m] = m == sorted_jw_basic_index_ ? jw(a_sorted, b_sorted)
                                         : basic[m].fn(a_norm, b_norm);
    out[k++] = raw[m];
  }
  // Group (ii): the custom-sorting decision of LGM-Sim on top of each
  // sortable measure — sort only when the raw score is unconvincing. The
  // raw score comes from the group-(i) buffer, not a recomputation.
  const double sort_threshold = sim.config().sort_threshold;
  const auto& sortable = text::SortableSimilarities();
  for (size_t s = 0; s < sortable.size(); ++s) {
    const double raw_score = raw[sortable_to_basic_[s]];
    out[k++] = raw_score >= sort_threshold
                   ? raw_score
                   : std::max(raw_score,
                              sortable[s].fn(a_sorted, b_sorted));
  }
  // Group (iii): LGM-Sim meta-similarity on top of each sortable measure.
  for (const text::NamedSimilarity& m : sortable) {
    out[k++] = sim.ScoreNormalized(a_norm, b_norm, m.fn);
  }
  // Group (iv): the three individual list scores, computed with
  // Damerau-Levenshtein as in the paper.
  const lgm::ListScores scores = sim.IndividualScoresNormalized(
      a_norm, b_norm, text::DamerauLevenshteinSimilarity);
  out[k++] = scores.base;
  out[k++] = scores.mismatch;
  out[k++] = scores.frequent;
}

LgmXExtractor::EntityText LgmXExtractor::ComputeEntityText(
    const data::SpatialEntity& e) {
  EntityText t;
  t.name_norm = text::Normalize(e.name);
  t.name_sorted = text::SortTokens(t.name_norm);
  t.addr_norm = text::Normalize(e.address_name);
  t.addr_sorted = text::SortTokens(t.addr_norm);
  return t;
}

void LgmXExtractor::RowFromCache(const data::SpatialEntity& a,
                                 const EntityText& ta,
                                 const data::SpatialEntity& b,
                                 const EntityText& tb, double* out) const {
  const size_t text_block = feature_count() / 2 - 1;  // 43 per attribute
  // Missing attribute on either side → all its features are 0.
  std::fill(out, out + feature_count(), 0.0);
  if (!ta.name_norm.empty() && !tb.name_norm.empty()) {
    TextFeatures(name_sim_, ta.name_norm, ta.name_sorted, tb.name_norm,
                 tb.name_sorted, out);
  }
  if (!ta.addr_norm.empty() && !tb.addr_norm.empty()) {
    TextFeatures(addr_sim_, ta.addr_norm, ta.addr_sorted, tb.addr_norm,
                 tb.addr_sorted, out + text_block);
  }
  // Address-number feature: normalized distance of the house numbers.
  double* tail = out + 2 * text_block;
  if (a.address_number >= 0 && b.address_number >= 0) {
    const double delta = std::abs(a.address_number - b.address_number);
    tail[0] = 1.0 - std::min(delta, static_cast<double>(
                                        options_.max_number_delta)) /
                        static_cast<double>(options_.max_number_delta);
  }
  // Spatial feature: normalized Euclidean (great-circle) distance.
  const double dist = geo::HaversineMeters(a.location, b.location);
  if (dist >= 0.0) {
    tail[1] = 1.0 - std::min(dist, options_.max_distance_m) /
                        options_.max_distance_m;
  }
}

void LgmXExtractor::ExtractRow(const data::SpatialEntity& a,
                               const data::SpatialEntity& b,
                               double* out) const {
  RowFromCache(a, ComputeEntityText(a), b, ComputeEntityText(b), out);
}

ml::FeatureMatrix LgmXExtractor::Extract(
    const data::Dataset& dataset,
    const std::vector<geo::CandidatePair>& pairs) const {
  SKYEX_SPAN("features/extract_lgmx");
  SKYEX_PROF_PHASE(::skyex::prof::Phase::kExtraction);
  ml::FeatureMatrix matrix = ml::FeatureMatrix::Zeros(pairs.size(), names_);

  // Cache normalized strings per entity once.
  std::vector<EntityText> cache(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    cache[i] = ComputeEntityText(dataset[i]);
  }

  // Chunks go through the shared pool (warm threads, no per-call spawn);
  // options_.num_threads only caps the fan-out of this call, it never
  // grows the pool. Each row lands in its own matrix slot, so the result
  // is the same at any thread count.
  par::ForOptions for_options;
  for_options.grain = 256;
  for_options.chunking = par::Chunking::kDynamic;
  for_options.max_parallelism = options_.num_threads;
  par::ParallelForChunked(
      0, pairs.size(), for_options, [&](size_t begin, size_t end) {
        SKYEX_SPAN("features/extract_worker");
        for (size_t r = begin; r < end; ++r) {
          const auto [i, j] = pairs[r];
          RowFromCache(dataset[i], cache[i], dataset[j], cache[j],
                       matrix.Row(r));
        }
      });
  SKYEX_COUNTER_ADD("features/rows_extracted", pairs.size());
  return matrix;
}

std::vector<geo::CandidatePair> LgmXExtractor::PrefilterPairs(
    const data::Dataset& dataset,
    const std::vector<geo::CandidatePair>& pairs, double threshold,
    size_t* dropped) const {
  if (dropped != nullptr) *dropped = 0;
  if (threshold <= 0.0 || pairs.empty()) return pairs;
  SKYEX_SPAN("features/prefilter_pairs");
  SKYEX_PROF_PHASE(::skyex::prof::Phase::kPrefilter);

  // Sketch every entity once (the sketch is an order of magnitude cheaper
  // than one feature row, and amortizes over every pair the entity is in).
  std::vector<EntitySketch> sketches(dataset.size());
  par::ForOptions for_options;
  for_options.grain = 512;
  for_options.max_parallelism = options_.num_threads;
  par::ParallelForChunked(
      0, dataset.size(), for_options, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          sketches[i].name =
              BuildTokenSketch(text::Normalize(dataset[i].name));
          sketches[i].addr =
              BuildTokenSketch(text::Normalize(dataset[i].address_name));
        }
      });

  std::vector<geo::CandidatePair> kept;
  kept.reserve(pairs.size());
  for (const geo::CandidatePair& pair : pairs) {
    if (EstimatePair(sketches[pair.first], sketches[pair.second]) >=
        threshold) {
      kept.push_back(pair);
    }
  }
  const size_t n_dropped = pairs.size() - kept.size();
  if (dropped != nullptr) *dropped = n_dropped;
  SKYEX_COUNTER_ADD("extract/prefilter_dropped", n_dropped);
  return kept;
}

}  // namespace skyex::features
