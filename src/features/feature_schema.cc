#include "features/feature_schema.h"

#include "text/similarity_registry.h"

namespace skyex::features {

std::vector<std::string> LgmXFeatureNames() {
  std::vector<std::string> names;
  for (const char* attr : {"name", "addr"}) {
    const std::string prefix(attr);
    for (const text::NamedSimilarity& m : text::BasicSimilarities()) {
      names.push_back(prefix + "_" + std::string(m.name));
    }
    for (const text::NamedSimilarity& m : text::SortableSimilarities()) {
      names.push_back(prefix + "_sorted_" + std::string(m.name));
    }
    for (const text::NamedSimilarity& m : text::SortableSimilarities()) {
      names.push_back(prefix + "_lgm_" + std::string(m.name));
    }
    names.push_back(prefix + "_lgm_base_score");
    names.push_back(prefix + "_lgm_mismatch_score");
    names.push_back(prefix + "_lgm_frequent_score");
  }
  names.push_back("addr_number_sim");
  names.push_back("geo_sim");
  return names;
}

size_t LgmXFeatureCount() { return LgmXFeatureNames().size(); }

}  // namespace skyex::features
