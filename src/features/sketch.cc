#include "features/sketch.h"

#include <algorithm>

namespace skyex::features {

namespace {

// SplitMix64 finalizer over the packed bigram code. Fixed constants: sketch
// contents must be stable across runs and hosts (they feed determinism
// tests and the threshold-0 bit-identity pin).
uint64_t HashCode(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Bottom-k keeper: registers 0..m-1 hold the current k smallest distinct
// values, and a binary max-tree stored at m..2m-2 tracks their maximum
// (tournament layout: node p >= m has children (p-m)*2 and (p-m)*2+1, the
// parent of any index i is m + (i>>1), the root 2m-2 holds the global max).
// A non-improving offer costs one comparison against the root; an improving
// one replaces the argmax register and refreshes the log2(m) path above it.
class BottomK {
 public:
  static constexpr size_t kM = kSketchRegisters;
  static constexpr size_t kNodes = 2 * kM - 1;

  BottomK() { data_.fill(TokenSketch::kEmptySlot); }

  void Offer(uint64_t x) {
    if (x >= data_[kNodes - 1]) return;  // not below the current max
    for (size_t r = 0; r < kM; ++r) {
      if (data_[r] == x) return;  // already kept (distinct-set semantics)
    }
    // Descend from the root to the register holding the max.
    size_t idx = kNodes - 1;
    while (idx >= kM) {
      const size_t lhi = (idx - kM) << 1;
      idx = (data_[lhi] >= data_[lhi + 1]) ? lhi : lhi + 1;
    }
    data_[idx] = x;
    // Refresh maxima up the path; stop once a node is unchanged.
    size_t i = idx;
    while (true) {
      i = kM + (i >> 1);
      if (i >= kNodes) break;
      const size_t lhi = (i - kM) << 1;
      const uint64_t mx = std::max(data_[lhi], data_[lhi + 1]);
      if (mx == data_[i]) break;
      data_[i] = mx;
    }
  }

  TokenSketch Finalize() const {
    TokenSketch sketch;
    for (size_t r = 0; r < kM; ++r) sketch.values[r] = data_[r];
    std::sort(sketch.values.begin(), sketch.values.end());
    uint32_t count = 0;
    while (count < kM && sketch.values[count] != TokenSketch::kEmptySlot) {
      ++count;
    }
    sketch.count = count;
    return sketch;
  }

 private:
  std::array<uint64_t, kNodes> data_;
};

}  // namespace

TokenSketch BuildTokenSketch(std::string_view normalized) {
  BottomK keeper;
  if (normalized.size() == 1) {
    // Mirror the bigram measures: a 1-character string is its own gram.
    keeper.Offer(HashCode(static_cast<uint8_t>(normalized[0])));
  } else {
    for (size_t i = 0; i + 2 <= normalized.size(); ++i) {
      const uint64_t code =
          0x20000ULL |
          (static_cast<uint64_t>(static_cast<uint8_t>(normalized[i])) << 8) |
          static_cast<uint8_t>(normalized[i + 1]);
      keeper.Offer(HashCode(code));
    }
  }
  return keeper.Finalize();
}

double EstimateResemblance(const TokenSketch& a, const TokenSketch& b) {
  if (a.count == 0 && b.count == 0) return 1.0;
  if (a.count == 0 || b.count == 0) return 0.0;
  // Standard bottom-k resemblance: walk the k smallest values of the union
  // (both arrays are ascending) and count how many appear in both. When the
  // union is smaller than k this degenerates to the exact Jaccard.
  size_t i = 0;
  size_t j = 0;
  size_t taken = 0;
  size_t inter = 0;
  while (taken < kSketchRegisters && (i < a.count || j < b.count)) {
    if (j >= b.count || (i < a.count && a.values[i] < b.values[j])) {
      ++i;
    } else if (i >= a.count || b.values[j] < a.values[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
    ++taken;
  }
  return static_cast<double>(inter) / static_cast<double>(taken);
}

double EstimatePair(const EntitySketch& a, const EntitySketch& b) {
  // Recall-safe combination: the MAX over the attributes comparable on
  // both sides, so a pair is only dropped when *every* shared attribute
  // looks dissimilar. A corrupted name with a matching address (or vice
  // versa) — common in true matches across sources — survives. With no
  // comparable attribute the pair cannot be judged and is kept.
  bool comparable = false;
  double best = 0.0;
  if (!a.name.empty() && !b.name.empty()) {
    comparable = true;
    best = EstimateResemblance(a.name, b.name);
  }
  if (!a.addr.empty() && !b.addr.empty()) {
    comparable = true;
    best = std::max(best, EstimateResemblance(a.addr, b.addr));
  }
  return comparable ? best : 1.0;
}

}  // namespace skyex::features
