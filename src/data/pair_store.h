#ifndef SKYEX_DATA_PAIR_STORE_H_
#define SKYEX_DATA_PAIR_STORE_H_

#include <cstdint>
#include <vector>

#include "geo/quadflex.h"

namespace skyex::data {

/// Candidate pairs together with their ground-truth labels — the unit of
/// work everything downstream (features, training, evaluation) operates
/// on. Pairs are indices into the owning Dataset.
struct LabeledPairs {
  std::vector<geo::CandidatePair> pairs;
  std::vector<uint8_t> labels;

  size_t size() const { return pairs.size(); }
  size_t NumPositives() const;
  double PositiveRate() const;
};

}  // namespace skyex::data

#endif  // SKYEX_DATA_PAIR_STORE_H_
