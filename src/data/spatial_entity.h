#ifndef SKYEX_DATA_SPATIAL_ENTITY_H_
#define SKYEX_DATA_SPATIAL_ENTITY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "geo/point.h"

namespace skyex::data {

/// Origin of a spatial entity record. The first four are the North-DK
/// sources of the paper; the last two are the Restaurants sources.
enum class Source : uint8_t {
  kKrak = 0,
  kGooglePlaces = 1,
  kYelp = 2,
  kFoursquare = 3,
  kFodors = 4,
  kZagat = 5,
};

std::string_view SourceName(Source source);

/// A spatial entity record (Definition 3.1 of the paper): a location plus
/// a set of descriptive attributes. Missing attributes are empty strings /
/// negative numbers / invalid points.
struct SpatialEntity {
  uint64_t id = 0;
  Source source = Source::kKrak;
  std::string name;
  /// Street name, without the house number ("Vestergade").
  std::string address_name;
  /// House number; -1 when missing.
  int address_number = -1;
  /// City (Restaurants dataset); empty when missing.
  std::string city;
  std::string phone;
  std::string website;
  std::vector<std::string> categories;
  geo::GeoPoint location = geo::GeoPoint::Invalid();

  /// Ground-truth physical entity id, known for generated data (0 when
  /// unknown). Never consumed by any algorithm — only by generator tests
  /// and diagnostics.
  uint64_t physical_id = 0;
};

/// A dataset of spatial entity records.
struct Dataset {
  std::vector<SpatialEntity> entities;

  size_t size() const { return entities.size(); }
  const SpatialEntity& operator[](size_t i) const { return entities[i]; }

  /// The coordinate of each record (invalid points preserved), in record
  /// order — the input the spatial blocker expects.
  std::vector<geo::GeoPoint> Points() const;

  /// Fraction of records per source.
  std::vector<std::pair<Source, double>> SourceMix() const;
};

}  // namespace skyex::data

#endif  // SKYEX_DATA_SPATIAL_ENTITY_H_
