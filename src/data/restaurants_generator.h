#ifndef SKYEX_DATA_RESTAURANTS_GENERATOR_H_
#define SKYEX_DATA_RESTAURANTS_GENERATOR_H_

#include <cstdint>

#include "data/name_model.h"
#include "data/spatial_entity.h"

namespace skyex::data {

/// Configuration of the synthetic Fodor's/Zagat's Restaurants dataset.
///
/// The real dataset has 864 restaurant records — 61.69% from Fodor's,
/// 38.31% from Zagat — with 112 known matched pairs, name/address/city/
/// phone/type attributes and *no coordinates*. Pairs are formed by the
/// full Cartesian product (372,816 pairs; positives are 0.03% of them).
/// The defaults reproduce those counts exactly.
struct RestaurantsOptions {
  size_t fodors_records = 533;
  size_t zagat_records = 331;
  size_t matched_pairs = 112;
  uint64_t seed = 11;
  /// Fodor's/Zagat duplicates are much cleaner than multi-source POI
  /// records: mostly identical names with occasional typos or dropped
  /// tokens, so the default noise is gentle.
  PerturbOptions perturb = {.typo_prob = 0.18,
                            .second_typo_prob = 0.04,
                            .drop_token_prob = 0.08,
                            .abbreviate_prob = 0.05,
                            .reorder_prob = 0.05,
                            .toggle_frequent_prob = 0.08};
};

/// Generates the synthetic Restaurants dataset. Matched pairs share a
/// phone number (the attribute the original ground truth was derived
/// from), which must therefore be excluded from pairwise comparison.
Dataset GenerateRestaurants(const RestaurantsOptions& options = {});

}  // namespace skyex::data

#endif  // SKYEX_DATA_RESTAURANTS_GENERATOR_H_
