#ifndef SKYEX_DATA_NORTHDK_GENERATOR_H_
#define SKYEX_DATA_NORTHDK_GENERATOR_H_

#include <cstdint>

#include "data/name_model.h"
#include "data/spatial_entity.h"

namespace skyex::data {

/// Configuration of the synthetic North-DK dataset (the paper's 75,541
/// North Denmark records from Krak, Google Places, Yelp and Foursquare).
///
/// The generator reproduces the *shape* of the original data: the source
/// mix, the cross-source distribution of duplicates (Table 2), the
/// positive rate among blocked pairs (~3.5%), city-clustered coordinates
/// with countryside sparsity, duplicate records with GPS jitter and
/// perturbed names/addresses, and chain businesses that act as hard
/// negatives. The default scale is reduced (8,000 records) so that all
/// experiments run on a laptop; `num_entities` scales it up to the
/// paper's size.
struct NorthDkOptions {
  size_t num_entities = 8000;
  uint64_t seed = 7;

  /// Positive pairs per record (paper: 27,102 / 75,541 ≈ 0.36).
  double positives_per_record = 0.36;
  /// Fraction of duplicate groups that have three records instead of two.
  double triple_ratio = 0.03;
  /// Fraction of physical entities that carry a chain name (hard
  /// negatives: same name, different phone/location).
  double chain_ratio = 0.05;
  /// Fraction of physical entities with a generic bare-type-word name
  /// ("Kiosken") — another source of hard negatives.
  double generic_name_ratio = 0.08;
  /// Probability that a duplicate record reports a different (related)
  /// category than its sibling — real sources disagree on taxonomy,
  /// which is what makes category-based baselines weak.
  double category_change_prob = 0.4;

  /// Probability that a duplicate record keeps the phone of its physical
  /// entity / the website. When neither fires, the phone is shared anyway
  /// so the pair stays detectable by the ground-truth rule.
  double share_phone_prob = 0.85;
  double share_website_prob = 0.6;

  /// Coordinate noise of duplicate records is a mixture: with
  /// `exact_geocode_prob` the sources geocoded the same way (σ ≈ 2 m),
  /// otherwise they disagree with σ = `coordinate_noise_m`.
  double coordinate_noise_m = 45.0;
  double exact_geocode_prob = 0.45;

  /// Fraction of physical entities placed in an already-used building
  /// (the paper's restaurant-and-hairdresser-in-one-building example):
  /// co-located hard negatives for geo-heavy baselines.
  double colocated_ratio = 0.04;

  /// Probability that a duplicate's street name is perturbed.
  double addr_perturb_prob = 0.6;

  /// Irreducible ground-truth noise — the phone/website rule is a proxy
  /// for identity, and in the real data it produces positives no
  /// similarity can recover and negatives no similarity can reject,
  /// which is what caps every method's F-measure around the paper's
  /// 0.74 level:
  /// a duplicate record that was renamed entirely (rebranding, alternate
  /// trade name) — a rule-positive that looks negative;
  double duplicate_rename_prob = 0.03;
  /// physicals in a shared building with a shared service phone (mall
  /// front desk): rule-positive pairs between unrelated businesses;
  double mall_member_prob = 0.045;
  /// a distinct physical cloned from an existing one (franchise twin,
  /// same name and street, own phone): a negative that looks positive.
  double twin_negative_prob = 0.03;

  /// Cross-source string noise. Deliberately heavier than the
  /// Restaurants dataset: token reorders, dropped/added type words and
  /// abbreviations are what separate the LGM-X features from plain
  /// edit-distance baselines on the real North-DK data.
  PerturbOptions perturb = {.typo_prob = 0.20,
                            .second_typo_prob = 0.05,
                            .drop_token_prob = 0.15,
                            .abbreviate_prob = 0.15,
                            .reorder_prob = 0.30,
                            .toggle_frequent_prob = 0.45};
};

/// Generates the synthetic North-DK dataset.
Dataset GenerateNorthDk(const NorthDkOptions& options = {});

}  // namespace skyex::data

#endif  // SKYEX_DATA_NORTHDK_GENERATOR_H_
