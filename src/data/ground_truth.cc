#include "data/ground_truth.h"

#include <algorithm>

namespace skyex::data {

bool SamePhysicalEntityRule(const SpatialEntity& a, const SpatialEntity& b) {
  if (!a.phone.empty() && a.phone == b.phone) return true;
  if (!a.website.empty() && a.website == b.website) return true;
  return false;
}

std::vector<uint8_t> LabelPairs(const Dataset& dataset,
                                const std::vector<geo::CandidatePair>& pairs) {
  std::vector<uint8_t> labels;
  labels.reserve(pairs.size());
  for (const auto& [i, j] : pairs) {
    labels.push_back(
        SamePhysicalEntityRule(dataset[i], dataset[j]) ? 1 : 0);
  }
  return labels;
}

SourceCrossTab PositivePairSources(
    const Dataset& dataset, const std::vector<geo::CandidatePair>& pairs,
    const std::vector<uint8_t>& labels) {
  SourceCrossTab tab{};
  for (size_t p = 0; p < pairs.size(); ++p) {
    if (!labels[p]) continue;
    const auto s1 = static_cast<size_t>(dataset[pairs[p].first].source);
    const auto s2 = static_cast<size_t>(dataset[pairs[p].second].source);
    ++tab[std::min(s1, s2)][std::max(s1, s2)];
  }
  return tab;
}

}  // namespace skyex::data
