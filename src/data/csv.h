#ifndef SKYEX_DATA_CSV_H_
#define SKYEX_DATA_CSV_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/spatial_entity.h"

namespace skyex::data {

/// Splits one CSV line into fields. Supports double-quoted fields with
/// embedded commas and escaped quotes ("" → ").
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Quotes a field when it contains commas, quotes or newlines.
std::string EscapeCsvField(const std::string& field);

/// Typed outcome of a failed ReadDatasetCsv: the 1-based line number of
/// the offending row (0 for file-level problems) and what was wrong
/// with it. Malformed feeds — wrong field counts, non-numeric ids,
/// NaN/Inf or out-of-range coordinates — fail here with a locatable
/// message instead of loading as garbage.
struct CsvError {
  size_t line = 0;
  std::string message;
};

/// Writes a dataset to a CSV file with a header row
/// (id,source,name,address_name,address_number,city,phone,website,
///  categories,lat,lon,physical_id; categories are ';'-separated).
/// ';' is reserved as the category separator: an embedded ';' inside a
/// category value is replaced by a space on write.
/// Returns false on I/O error.
bool WriteDatasetCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by WriteDatasetCsv. Numeric fields are
/// parsed strictly (full-field match, finite values, lat/lon in range,
/// source within the enum); structural problems fail with False +
/// `error` (when non-null). Text fields with invalid UTF-8 are
/// *repaired*, not rejected — real POI feeds carry mojibake, and one
/// bad byte must not kill a 100k-row load — but the repaired bytes
/// never propagate: every loaded text field is valid UTF-8 (so e.g.
/// JSON responses stay spec-clean). `repaired_fields` (when non-null)
/// counts the fields that needed repair.
bool ReadDatasetCsv(const std::string& path, Dataset* dataset,
                    CsvError* error = nullptr,
                    size_t* repaired_fields = nullptr);

/// True when `text` is well-formed UTF-8 (no overlong encodings, no
/// surrogate code points, no truncated sequences).
bool IsValidUtf8(const std::string& text);

/// Returns `text` with every invalid UTF-8 byte replaced by U+FFFD
/// (the replacement character); valid input comes back unchanged.
std::string SanitizeUtf8(const std::string& text);

}  // namespace skyex::data

#endif  // SKYEX_DATA_CSV_H_
