#ifndef SKYEX_DATA_CSV_H_
#define SKYEX_DATA_CSV_H_

#include <string>
#include <vector>

#include "data/spatial_entity.h"

namespace skyex::data {

/// Splits one CSV line into fields. Supports double-quoted fields with
/// embedded commas and escaped quotes ("" → ").
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Quotes a field when it contains commas, quotes or newlines.
std::string EscapeCsvField(const std::string& field);

/// Writes a dataset to a CSV file with a header row
/// (id,source,name,address_name,address_number,city,phone,website,
///  categories,lat,lon,physical_id; categories are ';'-separated).
/// ';' is reserved as the category separator: an embedded ';' inside a
/// category value is replaced by a space on write.
/// Returns false on I/O error.
bool WriteDatasetCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by WriteDatasetCsv. Returns false on I/O or
/// parse error.
bool ReadDatasetCsv(const std::string& path, Dataset* dataset);

}  // namespace skyex::data

#endif  // SKYEX_DATA_CSV_H_
