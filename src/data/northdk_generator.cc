#include "data/northdk_generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "geo/distance.h"

namespace skyex::data {

namespace {

// A population cluster of the location model: North Denmark cities plus a
// countryside component.
struct Cluster {
  double lat;
  double lon;
  double sigma_deg;   // Gaussian scatter; <0 marks the uniform component
  double weight;
};

const Cluster kClusters[] = {
    {57.048, 9.919, 0.020, 0.34},   // Aalborg
    {57.458, 9.983, 0.010, 0.10},   // Hjørring
    {57.441, 10.534, 0.010, 0.09},  // Frederikshavn
    {56.955, 8.694, 0.008, 0.07},   // Thisted
    {56.800, 9.520, 0.008, 0.06},   // Aars
    {57.261, 9.940, 0.008, 0.06},   // Brønderslev
    {0.0, 0.0, -1.0, 0.28},         // countryside (uniform over the box)
};

constexpr double kBoxMinLat = 56.60;
constexpr double kBoxMaxLat = 57.60;
constexpr double kBoxMinLon = 8.40;
constexpr double kBoxMaxLon = 10.60;

// `sigma_scale` shrinks the city clusters so that the point density —
// and with it the blocked-pairs-per-record ratio — stays comparable to
// the paper's 75,541-record dataset at any generated size.
geo::GeoPoint SampleLocation(double sigma_scale, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  double pick = unit(rng);
  const Cluster* cluster = &kClusters[0];
  for (const Cluster& c : kClusters) {
    if (pick < c.weight) {
      cluster = &c;
      break;
    }
    pick -= c.weight;
  }
  if (cluster->sigma_deg < 0.0) {
    std::uniform_real_distribution<double> lat_dist(kBoxMinLat, kBoxMaxLat);
    std::uniform_real_distribution<double> lon_dist(kBoxMinLon, kBoxMaxLon);
    return geo::GeoPoint{lat_dist(rng), lon_dist(rng), true};
  }
  std::normal_distribution<double> noise(0.0,
                                         cluster->sigma_deg * sigma_scale);
  return geo::GeoPoint{
      std::clamp(cluster->lat + noise(rng), kBoxMinLat, kBoxMaxLat),
      std::clamp(cluster->lon + noise(rng) * 1.8, kBoxMinLon, kBoxMaxLon),
      true};
}

geo::GeoPoint JitterLocation(const geo::GeoPoint& p, double sigma_m,
                             std::mt19937_64& rng) {
  std::normal_distribution<double> noise_m(0.0, sigma_m);
  const double north = std::clamp(noise_m(rng), -6.0 * sigma_m, 6.0 * sigma_m);
  const double east = std::clamp(noise_m(rng), -6.0 * sigma_m, 6.0 * sigma_m);
  return geo::GeoPoint{p.lat + geo::MetersToLatDegrees(north),
                       p.lon + geo::MetersToLonDegrees(east, p.lat), true};
}

// The cross-source duplicate distribution of Table 2 (counts of positive
// pairs per source combination in the real North-DK data).
struct SourceCombo {
  Source a;
  Source b;
  double weight;
};

const SourceCombo kDuplicateCombos[] = {
    {Source::kKrak, Source::kGooglePlaces, 17405},
    {Source::kKrak, Source::kKrak, 3789},
    {Source::kGooglePlaces, Source::kGooglePlaces, 3546},
    {Source::kGooglePlaces, Source::kYelp, 968},
    {Source::kKrak, Source::kYelp, 902},
    {Source::kYelp, Source::kYelp, 460},
    {Source::kGooglePlaces, Source::kFoursquare, 13},
    {Source::kYelp, Source::kFoursquare, 12},
    {Source::kKrak, Source::kFoursquare, 7},
};

SourceCombo PickCombo(std::mt19937_64& rng) {
  double total = 0.0;
  for (const SourceCombo& c : kDuplicateCombos) total += c.weight;
  std::uniform_real_distribution<double> dist(0.0, total);
  double pick = dist(rng);
  for (const SourceCombo& c : kDuplicateCombos) {
    if (pick < c.weight) return c;
    pick -= c.weight;
  }
  return kDuplicateCombos[0];
}

Source PickSingletonSource(std::mt19937_64& rng) {
  // Overall mix of the paper: 51.5% GP, 46.2% Krak, 2.2% Yelp, 0.03% FSQ.
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double pick = unit(rng);
  if (pick < 0.515) return Source::kGooglePlaces;
  if (pick < 0.977) return Source::kKrak;
  if (pick < 0.9997) return Source::kYelp;
  return Source::kFoursquare;
}

// Attributes of a physical entity, from which records are instantiated.
struct Physical {
  std::string name;
  std::string street;
  int number;
  std::string phone;
  std::string website;
  std::string category;
  geo::GeoPoint location;
};

// A building with a shared service phone (mall / office hotel).
struct Mall {
  geo::GeoPoint location;
  std::string phone;
  std::string street;
  int number;
  size_t members = 0;
};

// An occupied building: co-located entities share the full address.
struct Building {
  geo::GeoPoint location;
  std::string street;
  int number;
};

// Mutable generation state shared across physicals.
struct GenState {
  std::vector<Building> buildings;
  std::vector<Mall> malls;
  std::vector<Physical> twin_pool;  // candidates for franchise twins
};

Physical MakePhysical(uint64_t serial, const NorthDkOptions& options,
                      double sigma_scale, GenState* state,
                      std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> number_dist(1, 180);
  Physical p;
  const double style = unit(rng);
  if (style < options.chain_ratio) {
    p.name = Pick(ChainNames(), rng);
  } else if (style < options.chain_ratio + options.generic_name_ratio) {
    // Generic names ("kiosken", "bageriet") recur across many distinct
    // physical entities — hard negatives for name-similarity baselines.
    p.name = Pick(DanishTypeWords(), rng) + "en";
  } else {
    p.name = RandomDanishBusinessName(rng);
  }
  p.street = Pick(DanishStreets(), rng);
  p.number = number_dist(rng);
  p.phone = DanishPhone(serial);
  p.website = WebsiteFor(p.name + std::to_string(serial), true);
  p.category = Pick(DanishTypeWords(), rng);

  // Franchise twin: clone name/street/number of an earlier physical but
  // keep own phone/website — a negative that looks exactly positive.
  if (!state->twin_pool.empty() && unit(rng) < options.twin_negative_prob) {
    std::uniform_int_distribution<size_t> pick_twin(
        0, state->twin_pool.size() - 1);
    const Physical& original = state->twin_pool[pick_twin(rng)];
    p.name = original.name;
    p.street = original.street;
    p.number = original.number;
    if (unit(rng) < 0.75) {
      p.location = JitterLocation(original.location, 10.0, rng);
      state->buildings.push_back(
          Building{p.location, p.street, p.number});
      return p;
    }
  }

  // Mall member: shared building, and with it the building's service
  // phone — the ground-truth rule then links unrelated businesses.
  if (unit(rng) < options.mall_member_prob) {
    // Malls hold a handful of shops; open a new one when the sampled
    // mall is full (keeps the rule-noise linear in dataset size).
    if (state->malls.empty() || state->malls.back().members >= 4 ||
        unit(rng) < 0.2) {  // found a new mall
      Mall mall;
      mall.location = SampleLocation(sigma_scale, rng);
      mall.phone = DanishPhone(90000000 + state->malls.size());
      mall.street = Pick(DanishStreets(), rng);
      std::uniform_int_distribution<int> number_dist2(1, 180);
      mall.number = number_dist2(rng);
      state->malls.push_back(mall);
    }
    Mall& mall = state->malls.back();
    ++mall.members;
    p.location = JitterLocation(mall.location, 5.0, rng);
    p.street = mall.street;
    p.number = mall.number;
    if (unit(rng) < 0.6) p.phone = mall.phone;  // shared front desk
    state->twin_pool.push_back(p);
    return p;
  }

  if (!state->buildings.empty() && unit(rng) < options.colocated_ratio) {
    // Same building as an existing physical entity — a co-located hard
    // negative (different businesses on different floors) that shares
    // the full address, exactly like a true duplicate would.
    std::uniform_int_distribution<size_t> pick_building(
        0, state->buildings.size() - 1);
    const Building& building = state->buildings[pick_building(rng)];
    p.location = JitterLocation(building.location, 2.0, rng);
    p.street = building.street;
    p.number = building.number;
  } else {
    p.location = SampleLocation(sigma_scale, rng);
  }
  state->buildings.push_back(Building{p.location, p.street, p.number});
  state->twin_pool.push_back(p);
  return p;
}

}  // namespace

Dataset GenerateNorthDk(const NorthDkOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  // Match the paper dataset's spatial density at any scale (see
  // SampleLocation).
  const double sigma_scale =
      1.35 * std::sqrt(static_cast<double>(options.num_entities) / 75541.0);

  // Solve for group counts: positives = G2 + 3·G3, G3 = triple_ratio·G2,
  // records = 2·G2 + 3·G3 + singles = num_entities.
  const double r = static_cast<double>(options.num_entities);
  const double g2_f = options.positives_per_record * r /
                      (1.0 + 3.0 * options.triple_ratio);
  const size_t num_pairs_groups = static_cast<size_t>(g2_f);
  const size_t num_triple_groups =
      static_cast<size_t>(g2_f * options.triple_ratio);
  const size_t grouped_records =
      2 * num_pairs_groups + 3 * num_triple_groups;
  const size_t num_singles = options.num_entities > grouped_records
                                 ? options.num_entities - grouped_records
                                 : 0;

  Dataset dataset;
  dataset.entities.reserve(options.num_entities);
  uint64_t next_id = 1;
  uint64_t physical_serial = 1;
  uint64_t extra_phone_serial = 50000000;  // distinct pool for non-shared
  GenState state;

  const auto emit_record = [&](const Physical& p, Source source,
                               uint64_t physical_id, bool is_duplicate) {
    SpatialEntity e;
    e.id = next_id++;
    e.source = source;
    e.physical_id = physical_id;
    e.categories = {is_duplicate && unit(rng) < options.category_change_prob
                        ? Pick(DanishTypeWords(), rng)
                        : p.category};
    if (!is_duplicate) {
      e.name = p.name;
      e.address_name = p.street;
      e.address_number = p.number;
      e.phone = p.phone;
      e.website = unit(rng) < 0.7 ? p.website : "";
      e.location = p.location;
    } else {
      // Record quality drives ALL attribute noise of this record: a
      // sloppy source is sloppy in every field, a careful one in none.
      // This concordance is what real multi-source POI data exhibits —
      // and what makes clean duplicates Pareto-dominate across feature
      // groups instead of failing on one random dimension.
      // Bimodal quality: three quarters of the records are near-clean
      // copies, one quarter come from sloppy feeds and carry most of
      // the noise (total noise mass unchanged).
      const double quality = unit(rng);
      const double messiness = quality < 0.25 ? 2.8 : 0.4;
      PerturbOptions noise = options.perturb;
      const auto scaled = [messiness](double prob) {
        return std::min(0.95, prob * messiness);
      };
      noise.typo_prob = scaled(noise.typo_prob);
      noise.second_typo_prob = scaled(noise.second_typo_prob);
      noise.drop_token_prob = scaled(noise.drop_token_prob);
      noise.abbreviate_prob = scaled(noise.abbreviate_prob);
      noise.reorder_prob = scaled(noise.reorder_prob);
      noise.toggle_frequent_prob = scaled(noise.toggle_frequent_prob);

      e.name = quality < options.duplicate_rename_prob
                   ? RandomDanishBusinessName(rng)  // rebranded record
                   : Perturb(p.name, noise, rng);
      e.address_name = unit(rng) < scaled(options.addr_perturb_prob)
                           ? Perturb(p.street, noise, rng)
                           : p.street;
      e.address_number =
          unit(rng) < scaled(0.08)
              ? std::max(1, p.number + (unit(rng) < 0.5 ? 2 : -2))
              : p.number;
      const bool share_phone = unit(rng) < options.share_phone_prob;
      const bool share_website = unit(rng) < options.share_website_prob;
      e.phone = share_phone ? p.phone : DanishPhone(extra_phone_serial++);
      e.website = (share_website || !share_phone) ? p.website : "";
      const double sigma_m = quality > 1.0 - options.exact_geocode_prob
                                 ? 2.0
                                 : options.coordinate_noise_m;
      e.location = JitterLocation(p.location, sigma_m, rng);
    }
    dataset.entities.push_back(std::move(e));
  };

  // Duplicate groups of two.
  for (size_t g = 0; g < num_pairs_groups; ++g) {
    const Physical p =
        MakePhysical(physical_serial, options, sigma_scale, &state, rng);
    const SourceCombo combo = PickCombo(rng);
    emit_record(p, combo.a, physical_serial, /*is_duplicate=*/false);
    emit_record(p, combo.b, physical_serial, /*is_duplicate=*/true);
    ++physical_serial;
  }

  // Duplicate groups of three (Krak + GP + sampled third source).
  for (size_t g = 0; g < num_triple_groups; ++g) {
    const Physical p =
        MakePhysical(physical_serial, options, sigma_scale, &state, rng);
    emit_record(p, Source::kKrak, physical_serial, /*is_duplicate=*/false);
    emit_record(p, Source::kGooglePlaces, physical_serial,
                /*is_duplicate=*/true);
    emit_record(p, PickSingletonSource(rng), physical_serial,
                /*is_duplicate=*/true);
    ++physical_serial;
  }

  // Singleton records.
  for (size_t s = 0; s < num_singles; ++s) {
    const Physical p =
        MakePhysical(physical_serial, options, sigma_scale, &state, rng);
    emit_record(p, PickSingletonSource(rng), physical_serial,
                /*is_duplicate=*/false);
    ++physical_serial;
  }

  // Shuffle so record order carries no information about duplicates.
  std::shuffle(dataset.entities.begin(), dataset.entities.end(), rng);
  return dataset;
}

}  // namespace skyex::data
