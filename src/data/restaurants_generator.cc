#include "data/restaurants_generator.h"

#include <algorithm>
#include <random>
#include <string>
#include <unordered_set>

namespace skyex::data {

namespace {

struct Physical {
  std::string name;
  std::string street;
  int number;
  std::string city;
  std::string phone;
  std::string cuisine;
};

Physical MakePhysical(uint64_t serial,
                      std::unordered_set<std::string>* used_names,
                      std::mt19937_64& rng) {
  std::uniform_int_distribution<int> number_dist(1, 999);
  Physical p;
  // Restaurant names in the Fodor's/Zagat data are essentially unique;
  // re-draw (and ultimately disambiguate) to avoid accidental hard
  // negatives the real dataset does not have.
  for (int attempt = 0; attempt < 20; ++attempt) {
    p.name = RandomUsRestaurantName(rng);
    if (used_names->insert(p.name).second) break;
    if (attempt == 19) {
      p.name += " " + std::to_string(serial % 100);
      used_names->insert(p.name);
    }
  }
  p.street = Pick(UsStreets(), rng);
  p.number = number_dist(rng);
  p.city = Pick(UsCities(), rng);
  p.phone = UsPhone(serial);
  p.cuisine = Pick(UsCuisines(), rng);
  return p;
}

}  // namespace

Dataset GenerateRestaurants(const RestaurantsOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  const size_t matched = std::min(
      {options.matched_pairs, options.fodors_records, options.zagat_records});
  const size_t fodors_only = options.fodors_records - matched;
  const size_t zagat_only = options.zagat_records - matched;

  Dataset dataset;
  dataset.entities.reserve(options.fodors_records + options.zagat_records);
  uint64_t next_id = 1;
  uint64_t physical_serial = 1;
  std::unordered_set<std::string> used_names;

  const auto emit_record = [&](const Physical& p, Source source,
                               uint64_t physical_id, bool is_duplicate) {
    SpatialEntity e;
    e.id = next_id++;
    e.source = source;
    e.physical_id = physical_id;
    e.city = p.city;
    e.categories = {p.cuisine};
    e.phone = p.phone;  // ground truth: matched pairs share the phone
    e.location = geo::GeoPoint::Invalid();  // dataset has no coordinates
    if (!is_duplicate) {
      e.name = p.name;
      e.address_name = p.street;
      e.address_number = p.number;
    } else {
      e.name = Perturb(p.name, options.perturb, rng);
      e.address_name =
          unit(rng) < 0.3 ? Perturb(p.street, options.perturb, rng)
                          : p.street;
      e.address_number = unit(rng) < 0.95
                             ? p.number
                             : std::max(1, p.number + 1);
    }
    dataset.entities.push_back(std::move(e));
  };

  for (size_t m = 0; m < matched; ++m) {
    const Physical p = MakePhysical(physical_serial, &used_names, rng);
    emit_record(p, Source::kFodors, physical_serial, /*is_duplicate=*/false);
    emit_record(p, Source::kZagat, physical_serial, /*is_duplicate=*/true);
    ++physical_serial;
  }
  for (size_t f = 0; f < fodors_only; ++f) {
    const Physical p = MakePhysical(physical_serial, &used_names, rng);
    emit_record(p, Source::kFodors, physical_serial, /*is_duplicate=*/false);
    ++physical_serial;
  }
  for (size_t z = 0; z < zagat_only; ++z) {
    const Physical p = MakePhysical(physical_serial, &used_names, rng);
    emit_record(p, Source::kZagat, physical_serial, /*is_duplicate=*/false);
    ++physical_serial;
  }

  std::shuffle(dataset.entities.begin(), dataset.entities.end(), rng);
  return dataset;
}

}  // namespace skyex::data
