#include "data/csv.h"

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace skyex::data {

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string EscapeCsvField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

namespace {

std::string JoinCategories(const std::vector<std::string>& categories) {
  std::string out;
  for (size_t i = 0; i < categories.size(); ++i) {
    if (i > 0) out.push_back(';');
    // ';' is the category separator; embedded ones cannot round-trip.
    for (char ch : categories[i]) out.push_back(ch == ';' ? ' ' : ch);
  }
  return out;
}

std::vector<std::string> SplitCategories(const std::string& joined) {
  std::vector<std::string> out;
  std::stringstream ss(joined);
  std::string item;
  while (std::getline(ss, item, ';')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

bool WriteDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "id,source,name,address_name,address_number,city,phone,website,"
         "categories,lat,lon,physical_id\n";
  for (const SpatialEntity& e : dataset.entities) {
    out << e.id << ',' << static_cast<int>(e.source) << ','
        << EscapeCsvField(e.name) << ',' << EscapeCsvField(e.address_name)
        << ',' << e.address_number << ',' << EscapeCsvField(e.city) << ','
        << EscapeCsvField(e.phone) << ',' << EscapeCsvField(e.website)
        << ',' << EscapeCsvField(JoinCategories(e.categories)) << ',';
    if (e.location.valid) {
      out << e.location.lat << ',' << e.location.lon;
    } else {
      out << ',';
    }
    out << ',' << e.physical_id << '\n';
  }
  return static_cast<bool>(out);
}

bool ReadDatasetCsv(const std::string& path, Dataset* dataset) {
  std::ifstream in(path);
  if (!in) return false;
  dataset->entities.clear();
  std::string line;
  if (!std::getline(in, line)) return false;  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = ParseCsvLine(line);
    if (fields.size() != 12) return false;
    SpatialEntity e;
    e.id = std::strtoull(fields[0].c_str(), nullptr, 10);
    e.source = static_cast<Source>(std::atoi(fields[1].c_str()));
    e.name = fields[2];
    e.address_name = fields[3];
    e.address_number = std::atoi(fields[4].c_str());
    e.city = fields[5];
    e.phone = fields[6];
    e.website = fields[7];
    e.categories = SplitCategories(fields[8]);
    if (!fields[9].empty() && !fields[10].empty()) {
      e.location = geo::GeoPoint{std::atof(fields[9].c_str()),
                                 std::atof(fields[10].c_str()), true};
    } else {
      e.location = geo::GeoPoint::Invalid();
    }
    e.physical_id = std::strtoull(fields[11].c_str(), nullptr, 10);
    dataset->entities.push_back(std::move(e));
  }
  return true;
}

}  // namespace skyex::data
