#include "data/csv.h"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace skyex::data {

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string EscapeCsvField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

namespace {

// Length in bytes of the valid UTF-8 sequence starting at `i`, or 0
// when the bytes there are not a valid sequence (lone continuation
// byte, truncated or overlong sequence, surrogate, > U+10FFFF).
size_t Utf8SequenceLength(const std::string& text, size_t i) {
  const unsigned char c = static_cast<unsigned char>(text[i]);
  size_t extra;
  uint32_t code;
  uint32_t min_code;
  if (c < 0x80) {
    return 1;
  } else if ((c & 0xE0) == 0xC0) {
    extra = 1;
    code = c & 0x1F;
    min_code = 0x80;
  } else if ((c & 0xF0) == 0xE0) {
    extra = 2;
    code = c & 0x0F;
    min_code = 0x800;
  } else if ((c & 0xF8) == 0xF0) {
    extra = 3;
    code = c & 0x07;
    min_code = 0x10000;
  } else {
    return 0;  // lone continuation byte or invalid lead byte
  }
  if (i + extra >= text.size()) return 0;  // truncated sequence
  for (size_t k = 1; k <= extra; ++k) {
    const unsigned char cont = static_cast<unsigned char>(text[i + k]);
    if ((cont & 0xC0) != 0x80) return 0;
    code = (code << 6) | (cont & 0x3F);
  }
  if (code < min_code) return 0;                   // overlong
  if (code >= 0xD800 && code <= 0xDFFF) return 0;  // surrogate
  if (code > 0x10FFFF) return 0;
  return extra + 1;
}

}  // namespace

bool IsValidUtf8(const std::string& text) {
  size_t i = 0;
  while (i < text.size()) {
    const size_t len = Utf8SequenceLength(text, i);
    if (len == 0) return false;
    i += len;
  }
  return true;
}

std::string SanitizeUtf8(const std::string& text) {
  if (IsValidUtf8(text)) return text;
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    const size_t len = Utf8SequenceLength(text, i);
    if (len == 0) {
      out += "\xEF\xBF\xBD";  // U+FFFD replacement character
      ++i;
    } else {
      out.append(text, i, len);
      i += len;
    }
  }
  return out;
}

namespace {

std::string JoinCategories(const std::vector<std::string>& categories) {
  std::string out;
  for (size_t i = 0; i < categories.size(); ++i) {
    if (i > 0) out.push_back(';');
    // ';' is the category separator; embedded ones cannot round-trip.
    for (char ch : categories[i]) out.push_back(ch == ';' ? ' ' : ch);
  }
  return out;
}

std::vector<std::string> SplitCategories(const std::string& joined) {
  std::vector<std::string> out;
  std::stringstream ss(joined);
  std::string item;
  while (std::getline(ss, item, ';')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// Strict full-field numeric parsers: the atoi/atof family stops at the
// first bad character and returns 0 for pure garbage, so "12x" or "abc"
// would load silently as 12 / 0. Here the whole field must parse.
bool ParseU64Field(const std::string& field, uint64_t* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(field.c_str(), &end, 10);
  if (errno != 0 || end != field.c_str() + field.size()) return false;
  if (field[0] == '-') return false;  // strtoull silently negates
  *out = v;
  return true;
}

bool ParseIntField(const std::string& field, int* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(field.c_str(), &end, 10);
  if (errno != 0 || end != field.c_str() + field.size()) return false;
  if (v < INT_MIN || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseDoubleField(const std::string& field, double* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(field.c_str(), &end);
  if (end != field.c_str() + field.size()) return false;
  *out = v;
  return true;
}

void SetError(CsvError* error, size_t line, std::string message) {
  if (error != nullptr) {
    error->line = line;
    error->message = std::move(message);
  }
}

}  // namespace

bool WriteDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "id,source,name,address_name,address_number,city,phone,website,"
         "categories,lat,lon,physical_id\n";
  for (const SpatialEntity& e : dataset.entities) {
    out << e.id << ',' << static_cast<int>(e.source) << ','
        << EscapeCsvField(e.name) << ',' << EscapeCsvField(e.address_name)
        << ',' << e.address_number << ',' << EscapeCsvField(e.city) << ','
        << EscapeCsvField(e.phone) << ',' << EscapeCsvField(e.website)
        << ',' << EscapeCsvField(JoinCategories(e.categories)) << ',';
    if (e.location.valid) {
      out << e.location.lat << ',' << e.location.lon;
    } else {
      out << ',';
    }
    out << ',' << e.physical_id << '\n';
  }
  return static_cast<bool>(out);
}

bool ReadDatasetCsv(const std::string& path, Dataset* dataset,
                    CsvError* error, size_t* repaired_fields) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, 0, "cannot open " + path);
    return false;
  }
  dataset->entities.clear();
  std::string line;
  size_t line_number = 1;
  if (!std::getline(in, line)) {
    SetError(error, 0, "empty file (missing header row)");
    return false;
  }
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::vector<std::string> fields = ParseCsvLine(line);
    if (fields.size() != 12) {
      SetError(error, line_number,
               "expected 12 fields, got " +
                   std::to_string(fields.size()));
      return false;
    }
    SpatialEntity e;
    if (!ParseU64Field(fields[0], &e.id)) {
      SetError(error, line_number, "bad id '" + fields[0] + "'");
      return false;
    }
    int source = 0;
    if (!ParseIntField(fields[1], &source) || source < 0 ||
        source > static_cast<int>(Source::kZagat)) {
      SetError(error, line_number, "bad source '" + fields[1] + "'");
      return false;
    }
    e.source = static_cast<Source>(source);
    // Text payload: repair mojibake rather than reject the row. Every
    // loaded field is valid UTF-8 afterwards (U+FFFD for bad bytes),
    // so downstream serializers (JSON responses) stay spec-clean.
    for (const size_t text_field : {2ul, 3ul, 5ul, 6ul, 7ul, 8ul}) {
      if (!IsValidUtf8(fields[text_field])) {
        fields[text_field] = SanitizeUtf8(fields[text_field]);
        if (repaired_fields != nullptr) ++*repaired_fields;
      }
    }
    e.name = fields[2];
    e.address_name = fields[3];
    if (!ParseIntField(fields[4], &e.address_number)) {
      SetError(error, line_number,
               "bad address_number '" + fields[4] + "'");
      return false;
    }
    e.city = fields[5];
    e.phone = fields[6];
    e.website = fields[7];
    e.categories = SplitCategories(fields[8]);
    if (!fields[9].empty() && !fields[10].empty()) {
      double lat = 0.0;
      double lon = 0.0;
      if (!ParseDoubleField(fields[9], &lat) ||
          !ParseDoubleField(fields[10], &lon)) {
        SetError(error, line_number,
                 "bad coordinates '" + fields[9] + "','" + fields[10] +
                     "'");
        return false;
      }
      // !(finite && in range) so NaN fails rather than passing every
      // < / > comparison.
      if (!(std::isfinite(lat) && std::isfinite(lon) && lat >= -90.0 &&
            lat <= 90.0 && lon >= -180.0 && lon <= 180.0)) {
        SetError(error, line_number,
                 "coordinates out of range or non-finite");
        return false;
      }
      e.location = geo::GeoPoint{lat, lon, true};
    } else if (fields[9].empty() != fields[10].empty()) {
      SetError(error, line_number, "lat and lon must be given together");
      return false;
    } else {
      e.location = geo::GeoPoint::Invalid();
    }
    if (!ParseU64Field(fields[11], &e.physical_id)) {
      SetError(error, line_number,
               "bad physical_id '" + fields[11] + "'");
      return false;
    }
    dataset->entities.push_back(std::move(e));
  }
  return true;
}

}  // namespace skyex::data
