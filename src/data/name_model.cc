#include "data/name_model.h"

#include <algorithm>
#include <cctype>
#include <cstddef>

#include "text/normalize.h"
#include "text/tokenize.h"

namespace skyex::data {

const std::vector<std::string>& DanishTypeWords() {
  static const auto& kWords = *new std::vector<std::string>{
      "restaurant", "cafe", "café", "pizzeria", "bar", "salon", "frisør",
      "bageri", "kiosk", "hotel", "apotek", "butik", "galleri", "klinik",
      "værksted", "tandlæge", "grill", "bistro",
  };
  return kWords;
}

const std::vector<std::string>& DanishCoreNames() {
  static const auto& kNames = *new std::vector<std::string>{
      "ambiance",  "amelie",   "møllehuset", "havblik",   "solsiden",
      "skovly",    "fjordens", "anker",      "nordstjernen", "guldhornet",
      "perlen",    "hjørnet",  "lygten",     "kompasset", "søstjernen",
      "birken",    "egelund",  "lindely",    "rosenhave", "violhaven",
      "bølgen",    "klitten",  "marehalm",   "vesterhav", "østerport",
      "smedjen",   "kroen",    "laden",      "stalden",   "bryggen",
      "toldboden", "pakhuset", "remisen",    "silo",      "værftet",
      "fyrtårnet", "skipperstuen", "strandgaarden", "enghaven", "bakkely",
  };
  return kNames;
}

const std::vector<std::string>& DanishSurnames() {
  static const auto& kNames = *new std::vector<std::string>{
      "jensen",   "nielsen",     "hansen", "pedersen", "andersen",
      "christensen", "larsen",   "sørensen", "rasmussen", "jørgensen",
      "petersen", "madsen",      "kristensen", "olsen",  "thomsen",
  };
  return kNames;
}

const std::vector<std::string>& DanishStreets() {
  static const auto& kStreets = *new std::vector<std::string>{
      "vestergade",  "østergade",  "nørregade",   "søndergade",
      "algade",      "bredgade",   "havnegade",   "kirkegade",
      "skovvej",     "strandvejen", "møllevej",   "parkvej",
      "jernbanegade", "danmarksgade", "boulevarden", "kastetvej",
      "hobrovej",    "hadsundvej", "vesterbro",   "østerbro",
      "ringvejen",   "industrivej", "enghavevej", "fjordgade",
  };
  return kStreets;
}

const std::vector<std::string>& ChainNames() {
  static const auto& kChains = *new std::vector<std::string>{
      "føtex",        "netto",      "brugsen",  "matas",
      "sunset boulevard", "lagkagehuset", "espresso house", "baresso",
  };
  return kChains;
}

const std::vector<std::string>& UsCuisines() {
  static const auto& kCuisines = *new std::vector<std::string>{
      "italian",  "french",    "thai",    "mexican", "seafood",
      "steakhouse", "sushi",   "bbq",     "deli",    "diner",
      "cajun",    "greek",     "indian",  "chinese", "american",
  };
  return kCuisines;
}

const std::vector<std::string>& UsCities() {
  static const auto& kCities = *new std::vector<std::string>{
      "new york", "los angeles", "chicago", "san francisco", "atlanta",
      "new orleans", "las vegas", "boston",
  };
  return kCities;
}

const std::vector<std::string>& UsCoreNames() {
  static const auto& kNames = *new std::vector<std::string>{
      "bella napoli", "golden dragon", "blue bayou", "la traviata",
      "chez marie",  "el charro",     "sakura",     "the palm",
      "union square", "river walk",   "magnolia",   "peacock alley",
      "cypress",     "mesa verde",    "harbor view", "canal street",
      "king's table", "silver spoon", "copper kettle", "olive grove",
      "red lantern", "white oak",     "stone bridge", "sunset terrace",
      "garden court", "royal orchid", "villa rosa",  "casa blanca",
      "lone star",   "bay leaf",      "wild ginger", "spice market",
  };
  return kNames;
}

const std::vector<std::string>& UsStreets() {
  static const auto& kStreets = *new std::vector<std::string>{
      "main st",     "broadway",     "market st",  "sunset blvd",
      "fifth ave",   "lexington ave", "canal st",  "bourbon st",
      "mission st",  "peachtree rd", "lake shore dr", "melrose ave",
      "madison ave", "columbus ave", "ocean dr",   "ventura blvd",
  };
  return kStreets;
}

const std::string& Pick(const std::vector<std::string>& pool,
                        std::mt19937_64& rng) {
  std::uniform_int_distribution<size_t> dist(0, pool.size() - 1);
  return pool[dist(rng)];
}

std::string RandomDanishBusinessName(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double style = unit(rng);
  if (style < 0.45) {
    // "Restaurant Ambiance"
    return Pick(DanishTypeWords(), rng) + " " + Pick(DanishCoreNames(), rng);
  }
  if (style < 0.70) {
    // "Jensens Frisør"
    return Pick(DanishSurnames(), rng) + "s " + Pick(DanishTypeWords(), rng);
  }
  if (style < 0.90) {
    // "Møllehuset"
    return Pick(DanishCoreNames(), rng);
  }
  // "Cafe Skovly & Jensen"
  return Pick(DanishTypeWords(), rng) + " " + Pick(DanishCoreNames(), rng) +
         " & " + Pick(DanishSurnames(), rng);
}

std::string RandomUsRestaurantName(std::mt19937_64& rng) {
  static const auto& kVenueWords = *new std::vector<std::string>{
      "grill", "cafe", "kitchen", "house", "bistro", "tavern", "room",
      "garden", "place", "oyster bar", "brasserie", "trattoria",
  };
  static const auto& kAdjectives = *new std::vector<std::string>{
      "old",   "little", "grand", "royal", "golden", "original",
      "uptown", "downtown", "famous", "new",
  };
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double style = unit(rng);
  if (style < 0.3) return Pick(UsCoreNames(), rng);
  if (style < 0.6) {
    return Pick(UsCoreNames(), rng) + " " + Pick(kVenueWords, rng);
  }
  if (style < 0.8) {
    return Pick(kAdjectives, rng) + " " + Pick(UsCoreNames(), rng);
  }
  return Pick(UsCoreNames(), rng) + " " + Pick(UsCuisines(), rng);
}

namespace {

// One random character edit: substitution, insertion, deletion, or
// adjacent transposition.
void ApplyTypo(std::string* s, std::mt19937_64& rng) {
  if (s->empty()) return;
  std::uniform_int_distribution<int> op_dist(0, 3);
  std::uniform_int_distribution<size_t> pos_dist(0, s->size() - 1);
  std::uniform_int_distribution<int> letter_dist(0, 25);
  const size_t pos = pos_dist(rng);
  const char letter = static_cast<char>('a' + letter_dist(rng));
  switch (op_dist(rng)) {
    case 0:
      (*s)[pos] = letter;
      break;
    case 1:
      s->insert(s->begin() + static_cast<ptrdiff_t>(pos), letter);
      break;
    case 2:
      if (s->size() > 1) s->erase(s->begin() + static_cast<ptrdiff_t>(pos));
      break;
    case 3:
      if (pos + 1 < s->size()) std::swap((*s)[pos], (*s)[pos + 1]);
      break;
  }
}

bool IsFrequentTypeWord(const std::string& token) {
  const std::string folded = text::FoldAccents(token);
  for (const std::string& w : DanishTypeWords()) {
    if (text::FoldAccents(w) == folded) return true;
  }
  return false;
}

}  // namespace

std::string Perturb(const std::string& input, const PerturbOptions& options,
                    std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::string> tokens = text::Tokenize(input);
  if (tokens.empty()) return input;

  if (unit(rng) < options.drop_token_prob && tokens.size() > 1) {
    std::uniform_int_distribution<size_t> dist(1, tokens.size() - 1);
    tokens.erase(tokens.begin() + static_cast<ptrdiff_t>(dist(rng)));
  }
  if (unit(rng) < options.abbreviate_prob) {
    std::uniform_int_distribution<size_t> dist(0, tokens.size() - 1);
    std::string& t = tokens[dist(rng)];
    if (t.size() > 2) t = t.substr(0, 1) + ".";
  }
  if (unit(rng) < options.reorder_prob && tokens.size() > 1) {
    std::uniform_int_distribution<size_t> dist(0, tokens.size() - 2);
    const size_t i = dist(rng);
    std::swap(tokens[i], tokens[i + 1]);
  }
  if (unit(rng) < options.toggle_frequent_prob) {
    // Remove a leading type word if present, otherwise add one.
    if (tokens.size() > 1 && IsFrequentTypeWord(tokens.front())) {
      tokens.erase(tokens.begin());
    } else {
      tokens.insert(tokens.begin(), Pick(DanishTypeWords(), rng));
    }
  }

  std::string out = text::JoinTokens(tokens);
  if (unit(rng) < options.typo_prob) ApplyTypo(&out, rng);
  if (unit(rng) < options.second_typo_prob) ApplyTypo(&out, rng);
  return out;
}

std::string DanishPhone(uint64_t serial) {
  // 8 digits starting at 20000000 — unique per serial.
  return "+45" + std::to_string(20000000 + serial % 80000000);
}

std::string UsPhone(uint64_t serial) {
  const uint64_t n = serial % 10000000;
  return "212-" + std::to_string(100 + (n / 10000) % 900) + "-" +
         std::to_string(1000 + n % 9000);
}

std::string WebsiteFor(const std::string& name, bool danish) {
  std::string slug;
  for (char c : text::Normalize(name)) {
    if (c != ' ') slug.push_back(c);
  }
  if (slug.empty()) slug = "entity";
  return "www." + slug + (danish ? ".dk" : ".com");
}

}  // namespace skyex::data
