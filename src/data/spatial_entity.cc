#include "data/spatial_entity.h"

#include <array>

namespace skyex::data {

std::string_view SourceName(Source source) {
  switch (source) {
    case Source::kKrak:
      return "Krak";
    case Source::kGooglePlaces:
      return "GP";
    case Source::kYelp:
      return "Yelp";
    case Source::kFoursquare:
      return "FSQ";
    case Source::kFodors:
      return "Fodors";
    case Source::kZagat:
      return "Zagat";
  }
  return "unknown";
}

std::vector<geo::GeoPoint> Dataset::Points() const {
  std::vector<geo::GeoPoint> points;
  points.reserve(entities.size());
  for (const SpatialEntity& e : entities) points.push_back(e.location);
  return points;
}

std::vector<std::pair<Source, double>> Dataset::SourceMix() const {
  std::array<size_t, 6> counts{};
  for (const SpatialEntity& e : entities) {
    ++counts[static_cast<size_t>(e.source)];
  }
  std::vector<std::pair<Source, double>> mix;
  for (size_t s = 0; s < counts.size(); ++s) {
    if (counts[s] == 0) continue;
    mix.emplace_back(static_cast<Source>(s),
                     static_cast<double>(counts[s]) /
                         static_cast<double>(entities.size()));
  }
  return mix;
}

}  // namespace skyex::data
