#include "data/pair_store.h"

namespace skyex::data {

size_t LabeledPairs::NumPositives() const {
  size_t count = 0;
  for (uint8_t label : labels) count += label;
  return count;
}

double LabeledPairs::PositiveRate() const {
  if (pairs.empty()) return 0.0;
  return static_cast<double>(NumPositives()) /
         static_cast<double>(pairs.size());
}

}  // namespace skyex::data
