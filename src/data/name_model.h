#ifndef SKYEX_DATA_NAME_MODEL_H_
#define SKYEX_DATA_NAME_MODEL_H_

#include <random>
#include <string>
#include <vector>

namespace skyex::data {

/// The string-perturbation model used to create duplicate records of the
/// same physical entity. It imitates the noise observed between real
/// sources: typos, dropped or reordered tokens, abbreviations, and
/// added/removed frequent type words ("cafe", "restaurant", ...).
struct PerturbOptions {
  double typo_prob = 0.25;          // one random edit somewhere
  double second_typo_prob = 0.08;   // a second edit
  double drop_token_prob = 0.12;    // drop one non-head token
  double abbreviate_prob = 0.08;    // shorten a token to its initial
  double reorder_prob = 0.10;       // swap two tokens
  double toggle_frequent_prob = 0.2;  // add or remove a type word
};

/// Vocabularies for the synthetic datasets. Danish-flavoured lists (with
/// accented characters, exercising the normalizer) for North-DK; US lists
/// for Restaurants.
const std::vector<std::string>& DanishTypeWords();
const std::vector<std::string>& DanishCoreNames();
const std::vector<std::string>& DanishSurnames();
const std::vector<std::string>& DanishStreets();
const std::vector<std::string>& ChainNames();
const std::vector<std::string>& UsCuisines();
const std::vector<std::string>& UsCities();
const std::vector<std::string>& UsCoreNames();
const std::vector<std::string>& UsStreets();

/// Picks a uniformly random element.
const std::string& Pick(const std::vector<std::string>& pool,
                        std::mt19937_64& rng);

/// Generates a Danish-style business name, e.g. "Restaurant Ambiance" or
/// "Jensens Frisør".
std::string RandomDanishBusinessName(std::mt19937_64& rng);

/// Generates a US-style restaurant name, e.g. "Bella Napoli Grill".
std::string RandomUsRestaurantName(std::mt19937_64& rng);

/// Applies the perturbation model to a name/address string.
std::string Perturb(const std::string& input, const PerturbOptions& options,
                    std::mt19937_64& rng);

/// "+45" followed by 8 digits, unique per `serial`.
std::string DanishPhone(uint64_t serial);

/// US-style phone, unique per `serial`.
std::string UsPhone(uint64_t serial);

/// A website slug derived from a name ("www.<slug>.dk" / ".com").
std::string WebsiteFor(const std::string& name, bool danish);

}  // namespace skyex::data

#endif  // SKYEX_DATA_NAME_MODEL_H_
