#ifndef SKYEX_DATA_GROUND_TRUTH_H_
#define SKYEX_DATA_GROUND_TRUTH_H_

#include <array>
#include <cstdint>
#include <vector>

#include "data/spatial_entity.h"
#include "geo/quadflex.h"

namespace skyex::data {

/// The ground-truth rule the paper uses (Section 5.1): a pair of records
/// refers to the same physical entity when the phone number or the
/// website is identical (and present on both sides). Because the rule
/// consumes phone/website, those attributes must never be used as
/// similarity features.
bool SamePhysicalEntityRule(const SpatialEntity& a, const SpatialEntity& b);

/// Labels each candidate pair with the ground-truth rule; 1 = positive.
std::vector<uint8_t> LabelPairs(const Dataset& dataset,
                                const std::vector<geo::CandidatePair>& pairs);

/// Upper-triangular cross-tab of positive pairs by source combination
/// (Table 2 of the paper). Indexed [min(source_a, source_b)]
/// [max(source_a, source_b)].
using SourceCrossTab = std::array<std::array<size_t, 6>, 6>;
SourceCrossTab PositivePairSources(
    const Dataset& dataset, const std::vector<geo::CandidatePair>& pairs,
    const std::vector<uint8_t>& labels);

}  // namespace skyex::data

#endif  // SKYEX_DATA_GROUND_TRUTH_H_
