#ifndef SKYEX_PAR_RNG_H_
#define SKYEX_PAR_RNG_H_

// Deterministic per-stream RNG seeding for parallel training.
//
// A single sequential std::mt19937_64 ties every consumer to the order
// work happens to run in; parallel loops instead derive one independent
// stream per logical unit (tree t, resample b, ...) from the base seed.
// The mapping is a SplitMix64 finalizer, so neighboring stream ids land
// far apart in seed space, and the resulting model depends only on
// (seed, stream id) — never on the thread count or schedule.

#include <cstdint>

namespace skyex::par {

/// SplitMix64 finalizer (Steele et al.); bijective on 64-bit ints.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Seed of logical stream `stream` under base seed `seed`.
inline uint64_t SeedStream(uint64_t seed, uint64_t stream) {
  return SplitMix64(seed ^ SplitMix64(stream + 1));
}

}  // namespace skyex::par

#endif  // SKYEX_PAR_RNG_H_
