#include "par/thread_pool.h"

#include <utility>

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "prof/prof.h"

namespace skyex::par {

size_t HardwareThreads() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t threads)
    : threads_(threads == 0 ? HardwareThreads() : threads) {
  const size_t num_workers = threads_ - 1;
  queues_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this, i);
  }
  SKYEX_GAUGE_SET("par/pool_threads", static_cast<double>(threads_));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

namespace {

std::mutex& GlobalPoolMutex() {
  static std::mutex mutex;
  return mutex;
}

// Leaked so TaskGroups in static destructors never touch a dead pool.
ThreadPool*& GlobalPoolSlot() {
  static ThreadPool* pool = nullptr;
  return pool;
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  ThreadPool*& slot = GlobalPoolSlot();
  if (slot == nullptr) slot = new ThreadPool();
  return *slot;
}

void ThreadPool::SetGlobalThreads(size_t threads) {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  ThreadPool*& slot = GlobalPoolSlot();
  const size_t want = threads == 0 ? HardwareThreads() : threads;
  if (slot != nullptr && slot->threads() == want) return;
  delete slot;  // joins the old workers; requires an idle pool
  slot = new ThreadPool(want);
}

void ThreadPool::Submit(Task task) {
  // 1-thread pool (or a group bound to no pool): inline execution on
  // the submitting thread keeps submission order — the serial behavior.
  if (queues_.empty()) {
    Execute(task);
    return;
  }
  const size_t q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    queues_[q]->tasks.push_back(std::move(task));
  }
  const size_t depth = queued_.fetch_add(1, std::memory_order_relaxed) + 1;
  SKYEX_GAUGE_SET("par/queue_depth", static_cast<double>(depth));
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
  }
  idle_cv_.notify_one();
}

bool ThreadPool::TryPop(size_t home, Task* out) {
  const size_t n = queues_.size();
  for (size_t k = 0; k < n; ++k) {
    const size_t q = (home + k) % n;
    Worker& worker = *queues_[q];
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (worker.tasks.empty()) continue;
    if (k == 0 && home < n) {
      *out = std::move(worker.tasks.front());
      worker.tasks.pop_front();
    } else {
      // Stealing takes the opposite end to reduce contention with the
      // owner and to grab the chunk the owner would reach last.
      *out = std::move(worker.tasks.back());
      worker.tasks.pop_back();
      SKYEX_COUNTER_INC("par/steals");
    }
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::Execute(Task& task) {
#if !defined(SKYEX_OBS_DISABLED)
  const obs::Stopwatch watch;
#endif
  task.fn();
  SKYEX_HISTOGRAM_OBSERVE_US("par/task_latency_us", watch.ElapsedMicros());
  SKYEX_COUNTER_INC("par/tasks_executed");
  TaskGroup* group = task.group;
  if (group != nullptr) {
    // Decrement under the group mutex: a waiter that observes zero and
    // then acquires the mutex knows this completer has left the group,
    // so the group (and its condvar) can be destroyed safely.
    std::lock_guard<std::mutex> lock(group->mutex_);
    if (group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      group->done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop(size_t index) {
  // Workers opt into CPU-time sampling up front, so a profiler started
  // at any later point sees every pool thread.
  prof::CpuProfiler::Global().RegisterCurrentThread();
  for (;;) {
    Task task;
    if (TryPop(index, &task)) {
      Execute(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mutex_);
    idle_cv_.wait(lock, [this] {
      return stop_ || queued_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_ && queued_.load(std::memory_order_relaxed) == 0) return;
  }
}

ThreadPool::TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &ThreadPool::Global()) {}

ThreadPool::TaskGroup::~TaskGroup() { Wait(); }

void ThreadPool::TaskGroup::Run(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  // Capture the submitter's trace context and profiler phase so request
  // ids and sample attribution follow work across the pool boundary
  // (ParallelFor/Map/Reduce all funnel their non-caller chunks through
  // here). The caller-run chunk and the 1-thread inline path inherit
  // both naturally.
  const obs::TraceContext ctx = obs::CurrentContext();
  const prof::Phase phase = prof::CurrentPhase();
  if (ctx.valid() || phase != prof::Phase::kUntagged) {
    pool_->Submit(Task{[ctx, phase, fn = std::move(fn)] {
                         obs::ScopedTraceContext scope(ctx);
                         prof::PhaseScope phase_scope(phase);
                         fn();
                       },
                       this});
  } else {
    pool_->Submit(Task{std::move(fn), this});
  }
}

void ThreadPool::TaskGroup::Wait() {
  // Help: drain pool tasks (not necessarily this group's) until our own
  // count hits zero. Running foreign tasks while waiting is what makes
  // nested parallel sections safe on a saturated pool.
  const size_t external = pool_->queues_.size();  // no own deque
  while (pending_.load(std::memory_order_acquire) > 0) {
    Task task;
    if (pool_->TryPop(external, &task)) {
      pool_->Execute(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  // Rendezvous with the last completer: it decrements under mutex_, so
  // taking the mutex once more guarantees it is done touching us.
  std::lock_guard<std::mutex> lock(mutex_);
}

}  // namespace skyex::par
