#ifndef SKYEX_PAR_THREAD_POOL_H_
#define SKYEX_PAR_THREAD_POOL_H_

// Shared parallel runtime: a persistent work-stealing thread pool.
//
// One process-wide pool (`ThreadPool::Global()`) is shared by every hot
// path — skyline peeling, forest training, bulk feature extraction and
// the serving linker — so parallel sections reuse warm threads instead
// of spawning and joining their own (what features/lgm_x.cc used to do
// per Extract call).
//
// Scheduling model: each worker owns a deque of tasks. Submission
// round-robins across the deques; a worker pops from the front of its
// own deque and, when empty, steals from the back of a sibling's
// (counted in `par/steals`). Waiters help: a thread blocked in
// TaskGroup::Wait() drains pool tasks itself, which makes nested
// parallel sections deadlock-free and lets the caller participate in
// its own ParallelFor.
//
// A pool of size 1 has no worker threads at all: tasks run inline on
// the submitting thread in submission order, so `--threads=1`
// reproduces the serial behavior exactly.
//
// Observability (see docs/observability.md): `par/tasks_executed`,
// `par/steals`, `par/queue_depth`, `par/task_latency_us`,
// `par/pool_threads`.
//
// Thread-safety: Submit/TaskGroup are safe from any thread, including
// pool workers. SetGlobalThreads must only be called while no tasks are
// in flight (startup, between test cases).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace skyex::par {

/// max(1, std::thread::hardware_concurrency()).
size_t HardwareThreads();

class ThreadPool {
 public:
  /// `threads` is the total parallelism including the calling thread:
  /// the pool spawns `threads - 1` workers. 0 means HardwareThreads().
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (workers + the submitting thread).
  size_t threads() const { return threads_; }

  /// The process-wide pool. Sized HardwareThreads() unless
  /// SetGlobalThreads ran first (the `--threads` flag does).
  static ThreadPool& Global();
  /// Re-sizes the global pool (0 = HardwareThreads()). Joins the old
  /// workers; only call while no tasks are in flight.
  static void SetGlobalThreads(size_t threads);

  /// A batch of tasks completed together. Run() submits, Wait() blocks
  /// until every task of this group finished — helping to execute
  /// pending pool tasks while it waits.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool* pool = nullptr);
    /// Waits for stragglers; a TaskGroup must not outlive its tasks.
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Submits `fn` to the pool. On a 1-thread pool runs it inline.
    void Run(std::function<void()> fn);
    void Wait();

   private:
    friend class ThreadPool;
    ThreadPool* pool_;
    std::atomic<size_t> pending_{0};
    std::mutex mutex_;
    std::condition_variable done_cv_;
  };

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };
  struct Worker {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void Submit(Task task);
  /// Pops a task, preferring deque `home`; steals otherwise. `home` of
  /// workers_.size() means "external thread" (no own deque).
  bool TryPop(size_t home, Task* out);
  void Execute(Task& task);
  void WorkerLoop(size_t index);

  size_t threads_;
  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<size_t> queued_{0};  // tasks sitting in deques
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  bool stop_ = false;  // guarded by idle_mutex_
};

}  // namespace skyex::par

#endif  // SKYEX_PAR_THREAD_POOL_H_
