#ifndef SKYEX_PAR_PARALLEL_FOR_H_
#define SKYEX_PAR_PARALLEL_FOR_H_

// Data-parallel helpers on top of the shared ThreadPool: ParallelFor
// with static or dynamic chunking, ParallelMap, and a deterministic
// ordered reduce.
//
// Determinism contract: every helper partitions [begin, end) into
// contiguous chunks and writes results to disjoint, pre-assigned slots
// (or reduces them in chunk order), so the output never depends on the
// thread count or on scheduling. Combined with per-stream RNG seeding
// (par/rng.h) this is what keeps models and skylines bit-identical at
// any --threads value.
//
// All helpers run the body inline when the effective parallelism is 1
// or the range fits a single chunk — the `--threads=1` serial path has
// zero pool involvement.

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "par/thread_pool.h"

namespace skyex::par {

/// How a range is split into chunks.
enum class Chunking {
  /// One equal slice per runner: minimal scheduling overhead; best for
  /// uniform work (feature rows, tree training).
  kStatic,
  /// ceil(n / grain) chunks claimed via the work-stealing deques; best
  /// when per-item cost is skewed (skyline windows, candidate scans).
  kDynamic,
};

struct ForOptions {
  /// Minimum items per chunk; ranges below `grain` run inline.
  size_t grain = 1;
  Chunking chunking = Chunking::kDynamic;
  /// Caps the runners used for this loop (0 = pool size).
  size_t max_parallelism = 0;
  /// Pool to run on (nullptr = ThreadPool::Global()).
  ThreadPool* pool = nullptr;
};

namespace internal {

struct ChunkPlan {
  ThreadPool* pool = nullptr;
  std::vector<std::pair<size_t, size_t>> chunks;
};

/// Splits [begin, end) per the options; an empty `chunks` means "run
/// inline" (size-1 plans are folded into the inline path too).
inline ChunkPlan PlanChunks(size_t begin, size_t end,
                            const ForOptions& options) {
  ChunkPlan plan;
  const size_t n = end - begin;
  plan.pool = options.pool != nullptr ? options.pool : &ThreadPool::Global();
  size_t parallelism = plan.pool->threads();
  if (options.max_parallelism > 0) {
    parallelism = std::min(parallelism, options.max_parallelism);
  }
  const size_t grain = std::max<size_t>(1, options.grain);
  if (parallelism <= 1 || n <= grain) return plan;

  size_t num_chunks = options.chunking == Chunking::kStatic
                          ? std::min(parallelism, (n + grain - 1) / grain)
                          : (n + grain - 1) / grain;
  if (num_chunks <= 1) return plan;
  plan.chunks.reserve(num_chunks);
  // Even split with the remainder spread over the leading chunks, so
  // chunk boundaries (and therefore per-chunk float accumulation) are a
  // pure function of (n, num_chunks).
  const size_t base = n / num_chunks;
  const size_t extra = n % num_chunks;
  size_t at = begin;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t size = base + (c < extra ? 1 : 0);
    plan.chunks.emplace_back(at, at + size);
    at += size;
  }
  return plan;
}

}  // namespace internal

/// Runs `fn(chunk_begin, chunk_end)` over a partition of [begin, end).
/// The caller participates: it runs one chunk itself and then helps
/// drain the pool until the loop is done.
template <typename Fn>
void ParallelForChunked(size_t begin, size_t end, const ForOptions& options,
                        Fn&& fn) {
  if (begin >= end) return;
  internal::ChunkPlan plan = internal::PlanChunks(begin, end, options);
  if (plan.chunks.empty()) {
    fn(begin, end);
    return;
  }
  ThreadPool::TaskGroup group(plan.pool);
  for (size_t c = 1; c < plan.chunks.size(); ++c) {
    const auto [b, e] = plan.chunks[c];
    group.Run([&fn, b, e] { fn(b, e); });
  }
  fn(plan.chunks[0].first, plan.chunks[0].second);
  group.Wait();
}

/// Runs `fn(i)` for every i in [begin, end).
template <typename Fn>
void ParallelFor(size_t begin, size_t end, const ForOptions& options,
                 Fn&& fn) {
  ParallelForChunked(begin, end, options, [&fn](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) fn(i);
  });
}

/// Maps `fn(i)` into slot i of the result — deterministic placement.
template <typename Fn>
auto ParallelMap(size_t begin, size_t end, const ForOptions& options,
                 Fn&& fn) -> std::vector<decltype(fn(begin))> {
  std::vector<decltype(fn(begin))> out(end - begin);
  ParallelFor(begin, end, options, [&](size_t i) { out[i - begin] = fn(i); });
  return out;
}

/// Deterministic ordered reduce: `map(chunk_begin, chunk_end)` runs in
/// parallel per chunk, then `reduce(acc, chunk_value)` folds the chunk
/// values **in chunk order** on the calling thread. The result is
/// bit-identical for a fixed (range, grain, chunking) regardless of the
/// thread count.
template <typename T, typename MapFn, typename ReduceFn>
T ParallelReduceOrdered(size_t begin, size_t end, const ForOptions& options,
                        MapFn&& map, ReduceFn&& reduce, T init) {
  if (begin >= end) return init;
  internal::ChunkPlan plan = internal::PlanChunks(begin, end, options);
  if (plan.chunks.empty()) {
    return reduce(std::move(init), map(begin, end));
  }
  std::vector<T> partial(plan.chunks.size());
  {
    ThreadPool::TaskGroup group(plan.pool);
    for (size_t c = 1; c < plan.chunks.size(); ++c) {
      const auto [b, e] = plan.chunks[c];
      group.Run([&map, &partial, b, e, c] { partial[c] = map(b, e); });
    }
    partial[0] = map(plan.chunks[0].first, plan.chunks[0].second);
    group.Wait();
  }
  T acc = std::move(init);
  for (T& value : partial) acc = reduce(std::move(acc), std::move(value));
  return acc;
}

}  // namespace skyex::par

#endif  // SKYEX_PAR_PARALLEL_FOR_H_
