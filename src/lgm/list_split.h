#ifndef SKYEX_LGM_LIST_SPLIT_H_
#define SKYEX_LGM_LIST_SPLIT_H_

#include <string>
#include <vector>

#include "lgm/frequent_terms.h"
#include "text/similarity_registry.h"

namespace skyex::lgm {

/// The three pairs of term lists LGM-Sim splits two strings into:
/// base lists hold terms that (loosely) match across the strings,
/// mismatch lists hold the remaining significant terms, and frequent
/// lists hold corpus-frequent, low-significance terms.
struct TermLists {
  std::vector<std::string> base_a;
  std::vector<std::string> base_b;
  std::vector<std::string> mismatch_a;
  std::vector<std::string> mismatch_b;
  std::vector<std::string> frequent_a;
  std::vector<std::string> frequent_b;
};

/// Splits the token lists of two normalized strings.
///
/// Frequent terms (per `dict`) go to the frequent lists first. Among the
/// rest, tokens are greedily matched best-similarity-first using
/// `token_sim`; pairs at or above `match_threshold` populate the base
/// lists, unmatched tokens the mismatch lists.
TermLists SplitTermLists(const std::string& a, const std::string& b,
                         const FrequentTermDictionary& dict,
                         text::SimilarityFn token_sim,
                         double match_threshold);

}  // namespace skyex::lgm

#endif  // SKYEX_LGM_LIST_SPLIT_H_
