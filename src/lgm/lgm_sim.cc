#include "lgm/lgm_sim.h"

#include <algorithm>
#include <utility>

#include "text/normalize.h"
#include "text/tokenize.h"

namespace skyex::lgm {

LgmSim::LgmSim(FrequentTermDictionary dictionary, LgmSimConfig config)
    : dictionary_(std::move(dictionary)), config_(config) {}

TermLists LgmSim::SplitNormalized(std::string_view na, std::string_view nb,
                                  text::SimilarityFn base_fn) const {
  std::string a(na);
  std::string b(nb);
  // The custom sorting decision: hard-to-align strings are term-sorted
  // before splitting, which stabilizes the greedy matching.
  if (base_fn(a, b) < config_.sort_threshold) {
    a = text::SortTokens(a);
    b = text::SortTokens(b);
  }
  return SplitTermLists(a, b, dictionary_, base_fn, config_.match_threshold);
}

ListScores LgmSim::IndividualScoresNormalized(
    std::string_view na, std::string_view nb,
    text::SimilarityFn base_fn) const {
  const TermLists lists = SplitNormalized(na, nb, base_fn);
  ListScores scores;
  scores.base = base_fn(text::JoinTokens(lists.base_a),
                        text::JoinTokens(lists.base_b));
  scores.mismatch = base_fn(text::JoinTokens(lists.mismatch_a),
                            text::JoinTokens(lists.mismatch_b));
  scores.frequent = base_fn(text::JoinTokens(lists.frequent_a),
                            text::JoinTokens(lists.frequent_b));
  return scores;
}

ListScores LgmSim::IndividualScores(std::string_view a, std::string_view b,
                                    text::SimilarityFn base_fn) const {
  return IndividualScoresNormalized(text::Normalize(a), text::Normalize(b),
                                    base_fn);
}

double LgmSim::ScoreNormalized(std::string_view na, std::string_view nb,
                               text::SimilarityFn base_fn) const {
  const TermLists lists = SplitNormalized(na, nb, base_fn);

  // Score each list pair. A pair that is empty on both sides carries no
  // information: it is excluded and its weight redistributed over the
  // remaining lists (as in the reference LGM-Sim implementation). A pair
  // with terms on exactly one side scores 0 — extra unmatched terms count
  // against the match.
  struct ListEntry {
    double weight;
    double score;
    bool active;
  };
  const auto score_pair = [&](const std::vector<std::string>& la,
                              const std::vector<std::string>& lb,
                              double weight) -> ListEntry {
    if (la.empty() && lb.empty()) return {weight, 0.0, false};
    if (la.empty() || lb.empty()) return {weight, 0.0, true};
    return {weight, base_fn(text::JoinTokens(la), text::JoinTokens(lb)),
            true};
  };
  const ListEntry entries[3] = {
      score_pair(lists.base_a, lists.base_b, config_.base_weight),
      score_pair(lists.mismatch_a, lists.mismatch_b,
                 config_.mismatch_weight),
      score_pair(lists.frequent_a, lists.frequent_b,
                 config_.frequent_weight),
  };
  double active_weight = 0.0;
  double weighted_score = 0.0;
  for (const ListEntry& e : entries) {
    if (!e.active) continue;
    active_weight += e.weight;
    weighted_score += e.weight * e.score;
  }
  if (active_weight <= 0.0) {
    // Both strings were empty after normalization.
    return 1.0;
  }
  return weighted_score / active_weight;
}

double LgmSim::Score(std::string_view a, std::string_view b,
                     text::SimilarityFn base_fn) const {
  return ScoreNormalized(text::Normalize(a), text::Normalize(b), base_fn);
}

double LgmSim::CustomSortedScore(std::string_view a, std::string_view b,
                                 text::SimilarityFn base_fn) const {
  const std::string na = text::Normalize(a);
  const std::string nb = text::Normalize(b);
  const double raw = base_fn(na, nb);
  if (raw >= config_.sort_threshold) return raw;
  return std::max(raw,
                  base_fn(text::SortTokens(na), text::SortTokens(nb)));
}

}  // namespace skyex::lgm
