#ifndef SKYEX_LGM_WEIGHT_SEARCH_H_
#define SKYEX_LGM_WEIGHT_SEARCH_H_

#include <string>
#include <vector>

#include "lgm/lgm_sim.h"

namespace skyex::lgm {

/// A labeled string pair for weight learning.
struct LabeledStringPair {
  std::string a;
  std::string b;
  bool match = false;
};

/// Result of the grid search: the best configuration, the decision
/// threshold on the LGM-Sim score, and the achieved F1 on the training
/// pairs.
struct WeightSearchResult {
  LgmSimConfig config;
  double decision_threshold = 0.5;
  double f1 = 0.0;
};

/// Grid-searches the LGM-Sim list weights and match threshold that, with
/// the best score threshold, maximize F1 on the labeled pairs. This is
/// how the original LGM-Sim parameters were learned (on Geonames); the
/// paper reuses them "as is", so this is provided for completeness and
/// for re-tuning on new corpora.
WeightSearchResult SearchWeights(const std::vector<LabeledStringPair>& pairs,
                                 const FrequentTermDictionary& dictionary,
                                 text::SimilarityFn base_fn);

}  // namespace skyex::lgm

#endif  // SKYEX_LGM_WEIGHT_SEARCH_H_
