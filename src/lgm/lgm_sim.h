#ifndef SKYEX_LGM_LGM_SIM_H_
#define SKYEX_LGM_LGM_SIM_H_

#include <string>
#include <string_view>

#include "lgm/frequent_terms.h"
#include "lgm/list_split.h"
#include "text/similarity_registry.h"

namespace skyex::lgm {

/// Parameters of the LGM-Sim meta-similarity. The defaults are the
/// weights learned on the Geonames toponym corpus in Giannopoulos et al.
/// (base-list dominant); the paper reuses them "as is" — a transfer-
/// learning setup — and so do we. `weight_search.h` can re-learn them.
struct LgmSimConfig {
  /// Weight of the base-list similarity.
  double base_weight = 0.7;
  /// Weight of the mismatch-list similarity.
  double mismatch_weight = 0.2;
  /// Weight of the frequent-list similarity.
  double frequent_weight = 0.1;
  /// Per-token similarity needed for two terms to "loosely match" into
  /// the base lists.
  double match_threshold = 0.55;
  /// The custom sorting step sorts both strings' terms alphanumerically
  /// when the raw baseline similarity falls below this value.
  double sort_threshold = 0.55;
};

/// The per-list scores LGM-Sim computes before weighting — exposed
/// because LGM-X uses them as the "individual similarity score" features.
struct ListScores {
  double base = 0.0;
  double mismatch = 0.0;
  double frequent = 0.0;
};

/// The LGM-Sim meta-similarity: a series of processing and matching steps
/// applied on top of any baseline similarity function.
///
/// Pipeline (Section 4.2.1 of the paper): normalize → optional
/// alphanumeric term sorting → split into base/mismatch/frequent term
/// lists → score each list pair with the baseline function → weighted
/// ensemble.
class LgmSim {
 public:
  LgmSim(FrequentTermDictionary dictionary, LgmSimConfig config = {});

  /// The meta-similarity score in [0, 1] on top of `base_fn`.
  /// Inputs need not be normalized; normalization is applied internally.
  double Score(std::string_view a, std::string_view b,
               text::SimilarityFn base_fn) const;

  /// The three individual list scores (computed with `base_fn`).
  ListScores IndividualScores(std::string_view a, std::string_view b,
                              text::SimilarityFn base_fn) const;

  /// The "custom sorting" decision applied to a similarity measure: when
  /// the raw score is below the sort threshold, the measure is re-run on
  /// term-sorted strings and the better score is kept.
  double CustomSortedScore(std::string_view a, std::string_view b,
                           text::SimilarityFn base_fn) const;

  /// Variants that skip normalization — the caller passes strings already
  /// run through text::Normalize (the feature extractor caches them per
  /// entity, which matters when scoring hundreds of thousands of pairs).
  double ScoreNormalized(std::string_view na, std::string_view nb,
                         text::SimilarityFn base_fn) const;
  ListScores IndividualScoresNormalized(std::string_view na,
                                        std::string_view nb,
                                        text::SimilarityFn base_fn) const;

  const LgmSimConfig& config() const { return config_; }
  const FrequentTermDictionary& dictionary() const { return dictionary_; }

 private:
  TermLists SplitNormalized(std::string_view na, std::string_view nb,
                            text::SimilarityFn base_fn) const;

  FrequentTermDictionary dictionary_;
  LgmSimConfig config_;
};

}  // namespace skyex::lgm

#endif  // SKYEX_LGM_LGM_SIM_H_
