#ifndef SKYEX_LGM_FREQUENT_TERMS_H_
#define SKYEX_LGM_FREQUENT_TERMS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace skyex::lgm {

/// A dictionary of corpus-frequent terms ("cafe", "restaurant", "park",
/// ...). LGM-Sim moves such terms into separate lists so that they
/// contribute little to the final similarity decision. The dictionary is
/// gathered automatically from the training corpus, as in the paper.
struct FrequentTermOptions {
  /// A term is frequent when it appears in at least this many corpus
  /// strings...
  size_t min_count = 5;
  /// ...and is among the `max_terms` most frequent ones.
  size_t max_terms = 200;
  /// Terms shorter than this are never considered (initials etc.).
  size_t min_term_length = 3;
};

class FrequentTermDictionary {
 public:
  using Options = FrequentTermOptions;

  FrequentTermDictionary() = default;

  /// Builds the dictionary from a corpus of (already normalized) strings.
  static FrequentTermDictionary Build(const std::vector<std::string>& corpus,
                                      const Options& options = {});

  /// Builds a dictionary from an explicit term list (e.g., a hand-curated
  /// stop list).
  static FrequentTermDictionary FromTerms(std::vector<std::string> terms);

  bool Contains(std::string_view term) const;
  size_t size() const { return terms_.size(); }

 private:
  std::unordered_set<std::string> terms_;
};

}  // namespace skyex::lgm

#endif  // SKYEX_LGM_FREQUENT_TERMS_H_
