#include "lgm/list_split.h"

#include <algorithm>

#include "text/tokenize.h"

namespace skyex::lgm {

TermLists SplitTermLists(const std::string& a, const std::string& b,
                         const FrequentTermDictionary& dict,
                         text::SimilarityFn token_sim,
                         double match_threshold) {
  TermLists lists;
  std::vector<std::string> rest_a;
  std::vector<std::string> rest_b;
  for (std::string& t : text::Tokenize(a)) {
    (dict.Contains(t) ? lists.frequent_a : rest_a).push_back(std::move(t));
  }
  for (std::string& t : text::Tokenize(b)) {
    (dict.Contains(t) ? lists.frequent_b : rest_b).push_back(std::move(t));
  }

  // Greedy best-first matching of the significant tokens.
  struct Candidate {
    double sim;
    size_t i;
    size_t j;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < rest_a.size(); ++i) {
    for (size_t j = 0; j < rest_b.size(); ++j) {
      const double sim = token_sim(rest_a[i], rest_b[j]);
      if (sim >= match_threshold) candidates.push_back({sim, i, j});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.sim != y.sim) return x.sim > y.sim;
              if (x.i != y.i) return x.i < y.i;
              return x.j < y.j;
            });
  std::vector<bool> used_a(rest_a.size(), false);
  std::vector<bool> used_b(rest_b.size(), false);
  for (const Candidate& c : candidates) {
    if (used_a[c.i] || used_b[c.j]) continue;
    used_a[c.i] = true;
    used_b[c.j] = true;
    lists.base_a.push_back(rest_a[c.i]);
    lists.base_b.push_back(rest_b[c.j]);
  }
  for (size_t i = 0; i < rest_a.size(); ++i) {
    if (!used_a[i]) lists.mismatch_a.push_back(std::move(rest_a[i]));
  }
  for (size_t j = 0; j < rest_b.size(); ++j) {
    if (!used_b[j]) lists.mismatch_b.push_back(std::move(rest_b[j]));
  }
  return lists;
}

}  // namespace skyex::lgm
