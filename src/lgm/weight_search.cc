#include "lgm/weight_search.h"

#include <algorithm>
#include <vector>

namespace skyex::lgm {

namespace {

// F1 of "score >= threshold → match", maximized over thresholds; returns
// {best_f1, best_threshold}.
std::pair<double, double> BestThresholdF1(
    const std::vector<std::pair<double, bool>>& scored) {
  std::vector<std::pair<double, bool>> sorted = scored;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  size_t total_pos = 0;
  for (const auto& [score, label] : sorted) total_pos += label ? 1 : 0;
  if (total_pos == 0) return {0.0, 0.5};

  double best_f1 = 0.0;
  double best_threshold = 1.0;
  size_t tp = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].second) ++tp;
    // Candidate threshold just below sorted[i].first labels the first
    // i+1 pairs positive.
    if (i + 1 < sorted.size() && sorted[i + 1].first == sorted[i].first) {
      continue;  // ties must move together
    }
    const double precision = static_cast<double>(tp) / (i + 1);
    const double recall = static_cast<double>(tp) / total_pos;
    if (precision + recall == 0.0) continue;
    const double f1 = 2.0 * precision * recall / (precision + recall);
    if (f1 > best_f1) {
      best_f1 = f1;
      best_threshold = sorted[i].first;
    }
  }
  return {best_f1, best_threshold};
}

}  // namespace

WeightSearchResult SearchWeights(const std::vector<LabeledStringPair>& pairs,
                                 const FrequentTermDictionary& dictionary,
                                 text::SimilarityFn base_fn) {
  const double base_grid[] = {0.5, 0.6, 0.7, 0.8};
  const double mismatch_grid[] = {0.1, 0.2, 0.3};
  const double match_grid[] = {0.45, 0.55, 0.65};

  WeightSearchResult best;
  best.f1 = -1.0;
  for (double wb : base_grid) {
    for (double wm : mismatch_grid) {
      const double wf = 1.0 - wb - wm;
      if (wf < 0.0) continue;
      for (double mt : match_grid) {
        LgmSimConfig config;
        config.base_weight = wb;
        config.mismatch_weight = wm;
        config.frequent_weight = wf;
        config.match_threshold = mt;
        const LgmSim sim(dictionary, config);
        std::vector<std::pair<double, bool>> scored;
        scored.reserve(pairs.size());
        for (const LabeledStringPair& p : pairs) {
          scored.emplace_back(sim.Score(p.a, p.b, base_fn), p.match);
        }
        const auto [f1, threshold] = BestThresholdF1(scored);
        if (f1 > best.f1) {
          best.f1 = f1;
          best.config = config;
          best.decision_threshold = threshold;
        }
      }
    }
  }
  return best;
}

}  // namespace skyex::lgm
