#include "lgm/frequent_terms.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "text/tokenize.h"

namespace skyex::lgm {

FrequentTermDictionary FrequentTermDictionary::Build(
    const std::vector<std::string>& corpus, const Options& options) {
  std::unordered_map<std::string, size_t> counts;
  for (const std::string& s : corpus) {
    // Count each term once per string (document frequency).
    std::unordered_set<std::string> seen;
    for (std::string& t : text::Tokenize(s)) {
      if (t.size() < options.min_term_length) continue;
      if (seen.insert(t).second) ++counts[t];
    }
  }
  std::vector<std::pair<std::string, size_t>> ranked;
  ranked.reserve(counts.size());
  for (auto& [term, count] : counts) {
    if (count >= options.min_count) ranked.emplace_back(term, count);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (ranked.size() > options.max_terms) ranked.resize(options.max_terms);

  FrequentTermDictionary dict;
  for (auto& [term, count] : ranked) dict.terms_.insert(term);
  return dict;
}

FrequentTermDictionary FrequentTermDictionary::FromTerms(
    std::vector<std::string> terms) {
  FrequentTermDictionary dict;
  for (std::string& t : terms) dict.terms_.insert(std::move(t));
  return dict;
}

bool FrequentTermDictionary::Contains(std::string_view term) const {
  return terms_.find(std::string(term)) != terms_.end();
}

}  // namespace skyex::lgm
