// Reproduces Figure 2: the sorted |ρ(X_i, C)| curve with the two elbows
// ε₁ and ε₂ that define the preference groups of SkyEx-T.

#include <cstdio>

#include "bench_common.h"
#include "core/feature_selection.h"
#include "eval/sampling.h"
#include "ml/elbow.h"

int main(int argc, char** argv) {
  const auto config = skyex::bench::ParseFlags(argc, argv);
  const auto d = skyex::bench::PrepareNorthDkBench(config);

  const auto splits = skyex::eval::DisjointTrainingSplits(
      d.pairs.size(), 0.04, 1, config.seed + 400);
  const auto columns =
      skyex::core::DeduplicateFeatures(d.features, splits[0].train);
  const auto ranked = skyex::core::RankByClassCorrelation(
      d.features, d.pairs.labels, splits[0].train, columns);

  std::vector<double> curve;
  curve.reserve(ranked.size());
  for (const auto& f : ranked) curve.push_back(std::abs(f.rho));
  const auto elbows = skyex::ml::FindTwoElbows(curve);

  std::printf("Figure 2: |rho| per feature, sorted descending "
              "(after MI de-duplication; 4%% training sample)\n\n");
  std::printf("%4s %-38s %8s  %-24s\n", "rank", "feature", "|rho|",
              "curve");
  skyex::bench::PrintRule(80);
  const double max_rho = curve.empty() ? 1.0 : curve.front();
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::string bar(
        static_cast<size_t>(24.0 * curve[i] / std::max(1e-9, max_rho)),
        '#');
    const char* marker = "";
    if (i == elbows.first) marker = "  <-- eps1 (end of group 1)";
    if (i == elbows.second && elbows.second != elbows.first) {
      marker = "  <-- eps2 (end of group 2)";
    }
    std::printf("%4zu %-38s %8.3f  %-24s%s\n", i + 1,
                d.features.names[ranked[i].column].c_str(), curve[i],
                bar.c_str(), marker);
  }
  std::printf(
      "\nGroups: X_eps1 = ranks 1..%zu (Pareto block, prioritized), "
      "X_eps2 = ranks %zu..%zu (second Pareto block).\n",
      elbows.first + 1, elbows.first + 2, elbows.second + 1);
  return 0;
}
