// Reproduces Table 7: SkyEx-T versus the ML classifiers on Restaurants.

#include <cstdio>

#include "bench_common.h"
#include "ml_compare_common.h"

int main(int argc, char** argv) {
  const auto config = skyex::bench::ParseFlags(argc, argv);
  const auto d = skyex::bench::PrepareRestaurantsBench(config);

  std::printf("Table 7: SkyEx-T versus ML techniques on Restaurants\n");
  std::printf("(paper: SVM/XGBoost/MLP collapse at 1%% training — F1 "
              "0.20/0.00/0.08 — while\n SkyEx-T starts at 0.78; beyond 8%% "
              "the tree ensembles edge ahead)\n\n");

  std::vector<double> fractions = {0.01, 0.04, 0.08, 0.12,
                                   0.16, 0.20, 0.80};
  if (config.fast) fractions = {0.01, 0.08};
  skyex::bench::RunMlComparison(d, fractions, config, config.seed + 700);
  std::printf(
      "\nShape check: SkyEx-T is robust at tiny training sizes where "
      "several ML methods fail outright on the 0.03%%-positive skew.\n");
  return 0;
}
