// Micro-benchmarks of the skyline engine: dominance checks and layer
// peeling, with and without the dominance-compatible presort.

#include <benchmark/benchmark.h>

#include <memory>
#include <numeric>
#include <random>
#include <vector>

#include "ml/dataset_view.h"
#include "skyline/layers.h"
#include "skyline/preference.h"

namespace {

using skyex::ml::FeatureMatrix;
using skyex::skyline::High;
using skyex::skyline::Low;
using skyex::skyline::ParetoOf;
using skyex::skyline::Preference;
using skyex::skyline::PriorityOf;
using skyex::skyline::SkylinePeeler;

FeatureMatrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  FeatureMatrix m;
  m.rows = rows;
  m.cols = cols;
  for (size_t c = 0; c < cols; ++c) m.names.push_back("f");
  m.values.resize(rows * cols);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (double& v : m.values) v = std::round(unit(rng) * 50.0) / 50.0;
  return m;
}

std::unique_ptr<Preference> CanonicalPreference(size_t cols) {
  std::vector<std::unique_ptr<Preference>> g1;
  for (size_t c = 0; c < cols / 2; ++c) g1.push_back(High(c));
  std::vector<std::unique_ptr<Preference>> g2;
  for (size_t c = cols / 2; c < cols; ++c) g2.push_back(High(c));
  std::vector<std::unique_ptr<Preference>> parts;
  parts.push_back(ParetoOf(std::move(g1)));
  parts.push_back(ParetoOf(std::move(g2)));
  return PriorityOf(std::move(parts));
}

void BM_CompiledDominance(benchmark::State& state) {
  const size_t cols = static_cast<size_t>(state.range(0));
  const FeatureMatrix m = RandomMatrix(1024, cols, 1);
  const auto pref = CanonicalPreference(cols);
  const auto compiled = skyex::skyline::Compile(*pref);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compiled->Compare(m.Row(i % 1024), m.Row((i + 7) % 1024)));
    ++i;
  }
}
BENCHMARK(BM_CompiledDominance)->Arg(4)->Arg(8)->Arg(16);

void BM_TreeDominance(benchmark::State& state) {
  const size_t cols = static_cast<size_t>(state.range(0));
  const FeatureMatrix m = RandomMatrix(1024, cols, 1);
  const auto pref = CanonicalPreference(cols);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pref->Compare(m.Row(i % 1024), m.Row((i + 7) % 1024)));
    ++i;
  }
}
BENCHMARK(BM_TreeDominance)->Arg(4)->Arg(8)->Arg(16);

void BM_PeelFirstSkyline(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const FeatureMatrix m = RandomMatrix(rows, 6, 2);
  const auto pref = CanonicalPreference(6);
  std::vector<size_t> all(rows);
  std::iota(all.begin(), all.end(), 0);
  for (auto _ : state) {
    SkylinePeeler peeler(m, all, *pref);
    benchmark::DoNotOptimize(peeler.Next());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_PeelFirstSkyline)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_FullLayering(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const FeatureMatrix m = RandomMatrix(rows, 6, 3);
  const auto pref = CanonicalPreference(6);
  std::vector<size_t> all(rows);
  std::iota(all.begin(), all.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        skyex::skyline::ComputeSkylineLayers(m, all, *pref));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_FullLayering)->Arg(1000)->Arg(5000)->Arg(20000);

// Ablation: the same full layering forced through the general BNL path
// (no presort) by wrapping the preference in a non-compilable tree.
class OpaquePreference : public Preference {
 public:
  explicit OpaquePreference(std::unique_ptr<Preference> inner)
      : inner_(std::move(inner)) {}
  skyex::skyline::Comparison Compare(const double* a,
                                     const double* b) const override {
    return inner_->Compare(a, b);
  }
  std::string ToString(const std::vector<std::string>& names) const override {
    return inner_->ToString(names);
  }
  void CollectFeatures(std::vector<size_t>* out) const override {
    inner_->CollectFeatures(out);
  }
  std::unique_ptr<Preference> Clone() const override {
    return std::make_unique<OpaquePreference>(inner_->Clone());
  }

 private:
  std::unique_ptr<Preference> inner_;
};

void BM_FullLayeringNoPresort(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const FeatureMatrix m = RandomMatrix(rows, 6, 3);
  const OpaquePreference pref(CanonicalPreference(6));
  std::vector<size_t> all(rows);
  std::iota(all.begin(), all.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        skyex::skyline::ComputeSkylineLayers(m, all, pref));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_FullLayeringNoPresort)->Arg(1000)->Arg(5000);

}  // namespace
