// Custom google-benchmark main for the micro suites: peels a
// --threads=N flag off argv (sizing the shared par::ThreadPool) before
// handing the rest to the benchmark runner. This is what lets
// scripts/bench_snapshot.sh run the same suite at --threads=1 and
// --threads=N and report the speedup.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "par/thread_pool.h"

int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      skyex::par::ThreadPool::SetGlobalThreads(
          std::strtoull(argv[i] + 10, nullptr, 10));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
