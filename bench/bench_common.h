#ifndef SKYEX_BENCH_BENCH_COMMON_H_
#define SKYEX_BENCH_BENCH_COMMON_H_

// Shared plumbing for the table/figure reproduction binaries: flag
// parsing, dataset preparation and fixed-width table printing.
//
// Every binary accepts:
//   --entities=N   North-DK scale (default 8000; the paper used 75,541)
//   --reps=N       repetitions per configuration (default 10, as in the
//                  paper; heavier configurations auto-reduce)
//   --max-eval=N   cap on evaluation rows per split (default 30000)
//   --seed=N       master seed
//   --fast         tiny configuration for smoke runs
//   --threads=N    shared thread pool size (0/default = all cores)
//   --metrics-out=FILE  dump the metrics registry as JSON at exit

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"

namespace skyex::bench {

struct BenchConfig {
  size_t entities = 8000;
  size_t reps = 10;
  size_t max_eval = 30000;
  uint64_t seed = 7;
  bool fast = false;
};

/// Path for the atexit metrics dump (atexit takes no closure argument).
inline std::string& MetricsOutPath() {
  static std::string path;
  return path;
}

inline void WriteMetricsAtExit() {
  const std::string& path = MetricsOutPath();
  if (path.empty()) return;
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  obs::MetricsRegistry::Global().WriteJson(file);
}

inline BenchConfig ParseFlags(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--entities=", 11) == 0) {
      config.entities = std::strtoull(arg + 11, nullptr, 10);
    } else if (std::strncmp(arg, "--reps=", 7) == 0) {
      config.reps = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--max-eval=", 11) == 0) {
      config.max_eval = std::strtoull(arg + 11, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      par::ThreadPool::SetGlobalThreads(
          std::strtoull(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      MetricsOutPath() = arg + 14;
      std::atexit(WriteMetricsAtExit);
    } else if (std::strcmp(arg, "--fast") == 0) {
      config.fast = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(2);
    }
  }
  if (config.fast) {
    config.entities = std::min<size_t>(config.entities, 2000);
    config.reps = std::min<size_t>(config.reps, 2);
    config.max_eval = std::min<size_t>(config.max_eval, 8000);
  }
  return config;
}

inline core::PreparedData PrepareNorthDkBench(const BenchConfig& config) {
  data::NorthDkOptions options;
  options.num_entities = config.entities;
  options.seed = config.seed;
  std::printf("# generating synthetic North-DK (%zu records)...\n",
              config.entities);
  core::PreparedData d = core::PrepareNorthDk(options);
  std::printf("# blocked pairs=%zu positives=%zu (%.2f%%)\n\n",
              d.pairs.size(), d.pairs.NumPositives(),
              100.0 * d.pairs.PositiveRate());
  SKYEX_COUNTER_ADD("bench/pairs_blocked", d.pairs.size());
  SKYEX_COUNTER_ADD("bench/positive_pairs", d.pairs.NumPositives());
  SKYEX_GAUGE_SET("bench/positive_rate", d.pairs.PositiveRate());
  return d;
}

inline core::PreparedData PrepareRestaurantsBench(const BenchConfig& config,
                                                  size_t max_pairs = 40000) {
  data::RestaurantsOptions options;
  options.seed = config.seed;
  std::printf("# generating synthetic Restaurants (864 records)...\n");
  if (config.fast) max_pairs = std::min<size_t>(max_pairs, 10000);
  core::PreparedData d = core::PrepareRestaurants(options, {}, max_pairs,
                                                  config.seed + 1);
  std::printf(
      "# pairs=%zu (subsampled from the 372,816 Cartesian pairs, all 112 "
      "positives kept)\n\n",
      d.pairs.size());
  SKYEX_COUNTER_ADD("bench/pairs_blocked", d.pairs.size());
  SKYEX_COUNTER_ADD("bench/positive_pairs", d.pairs.NumPositives());
  SKYEX_GAUGE_SET("bench/positive_rate", d.pairs.PositiveRate());
  return d;
}

/// Caps an evaluation row set deterministically (keeps order).
inline std::vector<size_t> CapRows(const std::vector<size_t>& rows,
                                   size_t cap) {
  if (cap == 0 || rows.size() <= cap) return rows;
  return std::vector<size_t>(rows.begin(),
                             rows.begin() + static_cast<ptrdiff_t>(cap));
}

inline void PrintRule(size_t width) {
  for (size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace skyex::bench

#endif  // SKYEX_BENCH_BENCH_COMMON_H_
