// Supplementary analysis (beyond the paper's tables): precision-recall
// trade-off of SkyEx-T's skyline ranking versus the score rankings of
// the ML classifiers, on the same LGM-X features. SkyEx-T's "score" is
// the negated skyline level — the ranking Algorithm 2 cuts.

#include <cstdio>

#include "bench_common.h"
#include "core/skyex_t.h"
#include "eval/sampling.h"
#include "ml/curves.h"
#include "ml/gradient_boosting.h"
#include "ml/random_forest.h"
#include "skyline/layers.h"

int main(int argc, char** argv) {
  auto config = skyex::bench::ParseFlags(argc, argv);
  if (!config.fast) {
    config.max_eval = std::min<size_t>(config.max_eval, 20000);
  }
  const auto d = skyex::bench::PrepareNorthDkBench(config);
  const auto split =
      skyex::eval::RandomSplit(d.pairs.size(), 0.04, config.seed + 950);
  const auto eval_rows = skyex::bench::CapRows(split.test, config.max_eval);
  std::vector<uint8_t> truth;
  truth.reserve(eval_rows.size());
  for (size_t r : eval_rows) truth.push_back(d.pairs.labels[r]);

  // SkyEx-T: rank the evaluation rows into skylines; score = -layer.
  const std::vector<size_t> all_rows =
      skyex::core::AllRows(d.pairs.size());
  const skyex::core::SkyExT skyex;
  const auto model =
      skyex.Train(d.features, d.pairs.labels, split.train, &all_rows);
  const auto layers = skyex::skyline::ComputeSkylineLayers(
      d.features, eval_rows, *model.preference);
  std::vector<double> sky_scores(eval_rows.size());
  for (size_t k = 0; k < eval_rows.size(); ++k) {
    sky_scores[k] = -static_cast<double>(layers.layer[k]);
  }

  skyex::ml::RandomForest forest;
  forest.Fit(d.features, d.pairs.labels, split.train);
  skyex::ml::GradientBoosting gbm;
  gbm.Fit(d.features, d.pairs.labels, split.train);
  std::vector<double> rf_scores(eval_rows.size());
  std::vector<double> gbm_scores(eval_rows.size());
  for (size_t k = 0; k < eval_rows.size(); ++k) {
    rf_scores[k] = forest.PredictScore(d.features.Row(eval_rows[k]));
    gbm_scores[k] = gbm.PredictScore(d.features.Row(eval_rows[k]));
  }

  std::printf("Ranking quality on %zu held-out pairs (4%% training):\n\n",
              eval_rows.size());
  std::printf("%-22s %10s %10s %10s\n", "Method", "ROC-AUC", "AP",
              "best F1");
  skyex::bench::PrintRule(56);
  const auto report = [&](const char* name,
                          const std::vector<double>& scores) {
    std::printf("%-22s %10.3f %10.3f %10.3f\n", name,
                skyex::ml::RocAuc(scores, truth),
                skyex::ml::AveragePrecision(scores, truth),
                skyex::ml::BestF1(scores, truth));
  };
  report("SkyEx-T (skylines)", sky_scores);
  report("RandomForest", rf_scores);
  report("XGBoost", gbm_scores);

  std::printf("\nPR curve of the skyline ranking (one row per layer "
              "group):\n%8s %10s %10s\n", "depth", "precision", "recall");
  const auto curve = skyex::ml::PrecisionRecallCurve(sky_scores, truth);
  const size_t step = std::max<size_t>(1, curve.size() / 12);
  for (size_t i = 0; i < curve.size(); i += step) {
    std::printf("%8.0f %10.3f %10.3f\n", -curve[i].threshold,
                curve[i].precision, curve[i].recall);
  }
  return 0;
}
