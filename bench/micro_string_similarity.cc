// Micro-benchmarks of the string similarity substrate.

#include <benchmark/benchmark.h>

#include <string>

#include "text/edit_distance.h"
#include "text/jaro.h"
#include "text/normalize.h"
#include "text/similarity_registry.h"
#include "text/token_similarity.h"

namespace {

const char* kNameA = "restaurant ambiance vestergade";
const char* kNameB = "ambiançe restaurante vester gade";

void BM_Normalize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(skyex::text::Normalize(kNameB));
  }
}
BENCHMARK(BM_Normalize);

void BM_Levenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        skyex::text::LevenshteinSimilarity(kNameA, kNameB));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_DamerauLevenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        skyex::text::DamerauLevenshteinSimilarity(kNameA, kNameB));
  }
}
BENCHMARK(BM_DamerauLevenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        skyex::text::JaroWinklerSimilarity(kNameA, kNameB));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_PermutedJaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        skyex::text::PermutedJaroWinklerSimilarity(kNameA, kNameB));
  }
}
BENCHMARK(BM_PermutedJaroWinkler);

void BM_MongeElkan(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        skyex::text::MongeElkanSimilarity(kNameA, kNameB));
  }
}
BENCHMARK(BM_MongeElkan);

void BM_SoftJaccard(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        skyex::text::SoftJaccardSimilarity(kNameA, kNameB));
  }
}
BENCHMARK(BM_SoftJaccard);

void BM_AllBasicMeasures(benchmark::State& state) {
  const auto& measures = skyex::text::BasicSimilarities();
  for (auto _ : state) {
    double total = 0.0;
    for (const auto& m : measures) total += m.fn(kNameA, kNameB);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_AllBasicMeasures);

}  // namespace
