// Reproduces Figure 3: SkyEx-T runtime (preference training time and
// skyline ranking time) versus training size on North-DK.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/skyex_t.h"
#include "eval/sampling.h"
#include "eval/stopwatch.h"

int main(int argc, char** argv) {
  const auto config = skyex::bench::ParseFlags(argc, argv);
  const auto d = skyex::bench::PrepareNorthDkBench(config);

  std::printf("Figure 3: SkyEx-T training runtime vs training size "
              "(North-DK, averages over repetitions)\n\n");
  std::printf("%9s %8s %16s %16s %12s\n", "train", "rows",
              "preference (ms)", "ranking (ms)", "total (ms)");
  skyex::bench::PrintRule(68);

  std::vector<double> fractions = {0.0005, 0.001, 0.004, 0.008, 0.01,
                                   0.04,   0.08,  0.12,  0.16,  0.20};
  if (config.fast) fractions = {0.001, 0.01, 0.04};

  const skyex::core::SkyExT skyex;
  for (double fraction : fractions) {
    size_t reps = config.reps;
    if (fraction > 0.02) reps = std::min<size_t>(reps, 3);
    const auto splits = skyex::eval::DisjointTrainingSplits(
        d.pairs.size(), fraction, reps, config.seed + 500);
    double pref_ms = 0.0;
    double rank_ms = 0.0;
    size_t rows = 0;
    for (const auto& split : splits) {
      rows = split.train.size();
      // Preference training time: MI de-duplication, correlations and
      // elbow grouping. Measured by training with a degenerate sweep
      // first is intrusive, so we time the two phases directly: the
      // full Train() minus a re-run of the ranking sweep.
      skyex::eval::Stopwatch total_watch;
      const auto model =
          skyex.Train(d.features, d.pairs.labels, split.train);
      const double total = total_watch.ElapsedMillis();

      skyex::eval::Stopwatch rank_watch;
      (void)skyex::core::SweepCutoffOverSkylines(
          d.features, split.train, d.pairs.labels, *model.preference,
          /*tie_tolerance=*/0.985);
      const double ranking = rank_watch.ElapsedMillis();
      rank_ms += ranking;
      pref_ms += std::max(0.0, total - ranking);
    }
    const double n = static_cast<double>(splits.size());
    std::printf("%8.2f%% %8zu %16.1f %16.1f %12.1f\n", 100.0 * fraction,
                rows, pref_ms / n, rank_ms / n, (pref_ms + rank_ms) / n);
  }
  std::printf(
      "\nShape check (paper, R implementation): seconds up to 1%% "
      "training, under a minute at 4%%, growing quadratically; this C++ "
      "implementation shows the same growth at far smaller constants.\n");
  return 0;
}
