// Reproduces Figure 3: SkyEx-T runtime (preference training time and
// skyline ranking time) versus training size on North-DK.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/skyex_t.h"
#include "eval/sampling.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace {

// Phase split for one Train() call. With observability compiled in, the
// ranking time comes from the `skyline/sweep_cutoff` span that Train()
// records internally — no second sweep run needed. Under
// SKYEX_OBS_DISABLED spans record nothing, so fall back to re-running
// the sweep (the pre-span measurement trick).
struct PhaseSplit {
  double pref_ms = 0.0;
  double rank_ms = 0.0;
};

PhaseSplit MeasureTrain(const skyex::core::SkyExT& skyex,
                        const skyex::core::PreparedData& d,
                        const std::vector<size_t>& train_rows) {
  PhaseSplit split;
#if !defined(SKYEX_OBS_DISABLED)
  auto& collector = skyex::obs::TraceCollector::Global();
  collector.Reset();
  const auto model = skyex.Train(d.features, d.pairs.labels, train_rows);
  (void)model;
  const auto stats = collector.Aggregate();
  const auto train_it = stats.find("core/train_skyext");
  const auto sweep_it = stats.find("skyline/sweep_cutoff");
  const double total_ms =
      train_it == stats.end() ? 0.0 : train_it->second.total_us / 1000.0;
  split.rank_ms =
      sweep_it == stats.end() ? 0.0 : sweep_it->second.total_us / 1000.0;
  split.pref_ms = std::max(0.0, total_ms - split.rank_ms);
#else
  const skyex::obs::Stopwatch total_watch;
  const auto model = skyex.Train(d.features, d.pairs.labels, train_rows);
  const double total_ms = total_watch.ElapsedMillis();
  const skyex::obs::Stopwatch rank_watch;
  (void)skyex::core::SweepCutoffOverSkylines(
      d.features, train_rows, d.pairs.labels, *model.preference,
      /*tie_tolerance=*/0.985);
  split.rank_ms = rank_watch.ElapsedMillis();
  split.pref_ms = std::max(0.0, total_ms - split.rank_ms);
#endif
  return split;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = skyex::bench::ParseFlags(argc, argv);
  const auto d = skyex::bench::PrepareNorthDkBench(config);
#if !defined(SKYEX_OBS_DISABLED)
  skyex::obs::TraceCollector::Global().SetEnabled(true);
#endif

  std::printf("Figure 3: SkyEx-T training runtime vs training size "
              "(North-DK, averages over repetitions)\n\n");
  std::printf("%9s %8s %16s %16s %12s\n", "train", "rows",
              "preference (ms)", "ranking (ms)", "total (ms)");
  skyex::bench::PrintRule(68);

  std::vector<double> fractions = {0.0005, 0.001, 0.004, 0.008, 0.01,
                                   0.04,   0.08,  0.12,  0.16,  0.20};
  if (config.fast) fractions = {0.001, 0.01, 0.04};

  const skyex::core::SkyExT skyex;
  for (double fraction : fractions) {
    size_t reps = config.reps;
    if (fraction > 0.02) reps = std::min<size_t>(reps, 3);
    const auto splits = skyex::eval::DisjointTrainingSplits(
        d.pairs.size(), fraction, reps, config.seed + 500);
    double pref_ms = 0.0;
    double rank_ms = 0.0;
    size_t rows = 0;
    for (const auto& split : splits) {
      rows = split.train.size();
      const PhaseSplit phases = MeasureTrain(skyex, d, split.train);
      pref_ms += phases.pref_ms;
      rank_ms += phases.rank_ms;
    }
    const double n = static_cast<double>(splits.size());
    std::printf("%8.2f%% %8zu %16.1f %16.1f %12.1f\n", 100.0 * fraction,
                rows, pref_ms / n, rank_ms / n, (pref_ms + rank_ms) / n);
  }
  std::printf(
      "\nShape check (paper, R implementation): seconds up to 1%% "
      "training, under a minute at 4%%, growing quadratically; this C++ "
      "implementation shows the same growth at far smaller constants.\n");
  return 0;
}
