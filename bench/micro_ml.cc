// Micro-benchmarks of the from-scratch ML substrate (fit + predict) and
// of SkyEx-T training itself, on a synthetic linkage-shaped problem.

#include <benchmark/benchmark.h>

#include <random>

#include "core/skyex_t.h"
#include "ml/decision_tree.h"
#include "ml/extra_trees.h"
#include "ml/gradient_boosting.h"
#include "ml/linear_svm.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"

namespace {

struct Problem {
  skyex::ml::FeatureMatrix matrix;
  std::vector<uint8_t> labels;
  std::vector<size_t> rows;
};

const Problem& SharedProblem() {
  static const Problem& problem = *[] {
    auto* p = new Problem();
    const size_t n = 8000;
    const size_t d = 24;
    std::vector<std::string> names(d, "f");
    p->matrix = skyex::ml::FeatureMatrix::Zeros(n, names);
    p->labels.resize(n);
    p->rows.resize(n);
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::normal_distribution<double> noise(0.0, 0.15);
    for (size_t r = 0; r < n; ++r) {
      p->rows[r] = r;
      const bool positive = unit(rng) < 0.05;
      p->labels[r] = positive ? 1 : 0;
      for (size_t c = 0; c < d; ++c) {
        const double base = c < 6 ? (positive ? 0.8 : 0.3) : unit(rng);
        p->matrix.Row(r)[c] = std::clamp(base + noise(rng), 0.0, 1.0);
      }
    }
    return p;
  }();
  return problem;
}

template <typename ClassifierT>
void FitBenchmark(benchmark::State& state) {
  const Problem& p = SharedProblem();
  for (auto _ : state) {
    ClassifierT classifier;
    classifier.Fit(p.matrix, p.labels, p.rows);
    benchmark::DoNotOptimize(classifier.PredictScore(p.matrix.Row(0)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(p.rows.size()));
}

void BM_FitDecisionTree(benchmark::State& state) {
  FitBenchmark<skyex::ml::DecisionTree>(state);
}
BENCHMARK(BM_FitDecisionTree)->Unit(benchmark::kMillisecond);

void BM_FitRandomForest(benchmark::State& state) {
  FitBenchmark<skyex::ml::RandomForest>(state);
}
BENCHMARK(BM_FitRandomForest)->Unit(benchmark::kMillisecond);

void BM_FitExtraTrees(benchmark::State& state) {
  FitBenchmark<skyex::ml::ExtraTrees>(state);
}
BENCHMARK(BM_FitExtraTrees)->Unit(benchmark::kMillisecond);

void BM_FitGradientBoosting(benchmark::State& state) {
  FitBenchmark<skyex::ml::GradientBoosting>(state);
}
BENCHMARK(BM_FitGradientBoosting)->Unit(benchmark::kMillisecond);

void BM_FitLinearSvm(benchmark::State& state) {
  FitBenchmark<skyex::ml::LinearSvm>(state);
}
BENCHMARK(BM_FitLinearSvm)->Unit(benchmark::kMillisecond);

void BM_FitMlp(benchmark::State& state) {
  FitBenchmark<skyex::ml::Mlp>(state);
}
BENCHMARK(BM_FitMlp)->Unit(benchmark::kMillisecond);

void BM_SkyExTTrain(benchmark::State& state) {
  const Problem& p = SharedProblem();
  const size_t train_size = static_cast<size_t>(state.range(0));
  const std::vector<size_t> train(p.rows.begin(),
                                  p.rows.begin() +
                                      static_cast<ptrdiff_t>(train_size));
  for (auto _ : state) {
    const skyex::core::SkyExT skyex;
    benchmark::DoNotOptimize(skyex.Train(p.matrix, p.labels, train));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(train_size));
}
BENCHMARK(BM_SkyExTTrain)->Arg(500)->Arg(2000)->Arg(8000)->Unit(
    benchmark::kMillisecond);

void BM_SkyExTLabel(benchmark::State& state) {
  const Problem& p = SharedProblem();
  const skyex::core::SkyExT skyex;
  const std::vector<size_t> train(p.rows.begin(), p.rows.begin() + 1000);
  const auto model = skyex.Train(p.matrix, p.labels, train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        skyex::core::SkyExT::Label(p.matrix, p.rows, model));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(p.rows.size()));
}
BENCHMARK(BM_SkyExTLabel)->Unit(benchmark::kMillisecond);

}  // namespace
