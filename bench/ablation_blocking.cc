// Blocking ablation: QuadFlex (the paper's blocker) versus the classic
// alternatives — fixed grid, token blocking, sorted neighborhood — and
// the Cartesian baseline, measured with the standard blocking metrics
// (pair completeness = recall ceiling, reduction ratio) plus runtime.

#include <cstdio>

#include "bench_common.h"
#include "blocking/blockers.h"
#include "eval/stopwatch.h"
#include "geo/quadflex.h"

int main(int argc, char** argv) {
  auto config = skyex::bench::ParseFlags(argc, argv);
  skyex::data::NorthDkOptions options;
  options.num_entities = config.entities;
  options.seed = config.seed;
  const skyex::data::Dataset dataset =
      skyex::data::GenerateNorthDk(options);
  std::printf("# %zu records\n\n", dataset.size());

  std::printf("%-22s %12s %8s %10s %10s %10s\n", "Blocker", "pairs",
              "ms", "complete", "reduction", "pairs/rec");
  skyex::bench::PrintRule(80);

  const auto report = [&](const char* name,
                          const std::vector<skyex::geo::CandidatePair>&
                              pairs,
                          double ms) {
    const auto q = skyex::blocking::EvaluateBlocking(dataset, pairs);
    std::printf("%-22s %12zu %8.0f %9.1f%% %9.2f%% %10.1f\n", name,
                q.candidate_pairs, ms, 100.0 * q.PairCompleteness(),
                100.0 * q.ReductionRatio(dataset.size()),
                static_cast<double>(q.candidate_pairs) /
                    static_cast<double>(dataset.size()));
  };

  {
    skyex::eval::Stopwatch sw;
    const auto pairs = skyex::geo::QuadFlexBlock(dataset.Points());
    report("QuadFlex", pairs, sw.ElapsedMillis());
  }
  {
    skyex::eval::Stopwatch sw;
    skyex::blocking::GridBlockOptions grid;
    const auto pairs = skyex::blocking::GridBlock(dataset, grid);
    report("Grid 200m", pairs, sw.ElapsedMillis());
  }
  {
    skyex::eval::Stopwatch sw;
    const auto pairs = skyex::blocking::TokenBlock(dataset);
    report("Token blocking", pairs, sw.ElapsedMillis());
  }
  {
    skyex::eval::Stopwatch sw;
    const auto pairs = skyex::blocking::SortedNeighborhoodBlock(dataset);
    report("Sorted neighborhood", pairs, sw.ElapsedMillis());
  }
  {
    // Cartesian is reported analytically (materializing it at full scale
    // is the point of not using it).
    const double n = static_cast<double>(dataset.size());
    std::printf("%-22s %12.0f %8s %9.1f%% %9.2f%% %10.1f\n", "Cartesian",
                n * (n - 1) / 2, "-", 100.0, 0.0, (n - 1) / 2);
  }

  std::printf(
      "\nReading: spatial blockers capture nearly all rule-positives at a "
      "~99.8%% pair reduction; token blocking misses the pairs whose "
      "shared token was perturbed away; QuadFlex ≈ grid completeness "
      "with fewer pairs in dense areas.\n");
  return 0;
}
