// Reproduces Table 4: SkyEx-T F-measure with the learned cut-off c_t
// versus the optimal cut-off c* on the Restaurants dataset.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/skyex_t.h"
#include "eval/metrics.h"
#include "eval/sampling.h"

namespace {

struct PaperRow {
  double fraction;
  double f1_ct;
  double f1_opt;
};

const PaperRow kPaper[] = {
    {0.01, 0.782, 0.841}, {0.04, 0.813, 0.840}, {0.08, 0.831, 0.840},
    {0.12, 0.823, 0.839}, {0.16, 0.821, 0.834}, {0.20, 0.828, 0.839},
    {0.80, 0.820, 0.838},
};

}  // namespace

int main(int argc, char** argv) {
  const auto config = skyex::bench::ParseFlags(argc, argv);
  const auto d = skyex::bench::PrepareRestaurantsBench(config);

  std::printf("Table 4: SkyEx-T F1 for learned c_t vs optimal c* "
              "(Restaurants)\n\n");
  std::printf("%9s %6s %10s %10s %8s %8s   %s\n", "train", "reps",
              "F1(c_t)", "F1(c*)", "diff", "diff%", "paper F1(c_t)/F1(c*)");
  skyex::bench::PrintRule(96);

  const skyex::core::SkyExT skyex;
  const std::vector<size_t> all_rows =
      skyex::core::AllRows(d.pairs.size());
  for (const PaperRow& row : kPaper) {
    size_t reps = config.reps;
    if (row.fraction > 0.5) reps = 1;
    const auto splits = skyex::eval::DisjointTrainingSplits(
        d.pairs.size(), row.fraction, reps, config.seed + 200);
    double sum_ct = 0.0;
    double sum_opt = 0.0;
    for (const auto& split : splits) {
      const auto model =
          skyex.Train(d.features, d.pairs.labels, split.train,
                      &all_rows);
      const std::vector<size_t> eval_rows =
          skyex::bench::CapRows(split.test, config.max_eval);
      const auto predicted =
          skyex::core::SkyExT::Label(d.features, eval_rows, model);
      std::vector<uint8_t> truth;
      truth.reserve(eval_rows.size());
      for (size_t r : eval_rows) truth.push_back(d.pairs.labels[r]);
      sum_ct += skyex::eval::Confusion(predicted, truth).F1();
      const auto oracle = skyex::core::SweepCutoffOverSkylines(
          d.features, eval_rows, d.pairs.labels, *model.preference);
      sum_opt += oracle.best_f1;
    }
    const double n = static_cast<double>(splits.size());
    const double f1_ct = sum_ct / n;
    const double f1_opt = sum_opt / n;
    const double diff = f1_opt - f1_ct;
    std::printf("%8.2f%% %6zu %10.3f %10.3f %8.3f %7.2f%%   [%.3f / %.3f]\n",
                100.0 * row.fraction, splits.size(), f1_ct, f1_opt, diff,
                f1_opt > 0 ? 100.0 * diff / f1_opt : 0.0, row.f1_ct,
                row.f1_opt);
  }
  std::printf(
      "\nShape check: largest gap at 1%% training (only 1-2 positive pairs "
      "in the sample, paper: -7%%), shrinking with training size.\n");
  return 0;
}
