// Micro-benchmarks of the LGM-Sim meta-similarity.

#include <benchmark/benchmark.h>

#include <string_view>

#include "lgm/lgm_sim.h"
#include "text/edit_distance.h"
#include "text/jaro.h"

namespace {

const skyex::lgm::LgmSim& Sim() {
  static const auto& sim = *new skyex::lgm::LgmSim(
      skyex::lgm::FrequentTermDictionary::FromTerms(
          {"cafe", "restaurant", "pizzeria", "bar", "hotel"}));
  return sim;
}

double Jw(std::string_view a, std::string_view b) {
  return skyex::text::JaroWinklerSimilarity(a, b);
}

void BM_LgmSimDamerau(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Sim().Score("restaurant ambiance vest", "ambiançe bistro vester",
                    skyex::text::DamerauLevenshteinSimilarity));
  }
}
BENCHMARK(BM_LgmSimDamerau);

void BM_LgmSimJaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sim().Score("restaurant ambiance vest",
                                         "ambiançe bistro vester", Jw));
  }
}
BENCHMARK(BM_LgmSimJaroWinkler);

void BM_LgmIndividualScores(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sim().IndividualScores(
        "restaurant ambiance vest", "ambiançe bistro vester",
        skyex::text::DamerauLevenshteinSimilarity));
  }
}
BENCHMARK(BM_LgmIndividualScores);

void BM_LgmCustomSorted(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sim().CustomSortedScore(
        "vestergade amelie cafe", "cafe amelie vestergade",
        skyex::text::DamerauLevenshteinSimilarity));
  }
}
BENCHMARK(BM_LgmCustomSorted);

}  // namespace
