// Micro-benchmarks of the spatial substrate: distances, quadtree
// construction/queries, QuadFlex blocking and LGM-X feature extraction.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "data/northdk_generator.h"
#include "features/lgm_x.h"
#include "geo/distance.h"
#include "geo/quadflex.h"
#include "geo/quadtree.h"

namespace {

std::vector<skyex::geo::GeoPoint> ClusteredPoints(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> lat(57.05, 0.01);
  std::normal_distribution<double> lon(9.92, 0.02);
  std::vector<skyex::geo::GeoPoint> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back({lat(rng), lon(rng), true});
  }
  return points;
}

void BM_Haversine(benchmark::State& state) {
  const skyex::geo::GeoPoint a{57.0, 9.9, true};
  const skyex::geo::GeoPoint b{57.01, 9.95, true};
  for (auto _ : state) {
    benchmark::DoNotOptimize(skyex::geo::HaversineMeters(a, b));
  }
}
BENCHMARK(BM_Haversine);

void BM_QuadtreeBuild(benchmark::State& state) {
  const auto points = ClusteredPoints(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    skyex::geo::Quadtree tree(points, {});
    benchmark::DoNotOptimize(tree.num_leaves());
  }
}
BENCHMARK(BM_QuadtreeBuild)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_QuadFlexBlock(benchmark::State& state) {
  const auto points = ClusteredPoints(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(skyex::geo::QuadFlexBlock(points));
  }
}
BENCHMARK(BM_QuadFlexBlock)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_LgmXRow(benchmark::State& state) {
  skyex::data::NorthDkOptions options;
  options.num_entities = 200;
  const auto dataset = skyex::data::GenerateNorthDk(options);
  const auto extractor =
      skyex::features::LgmXExtractor::FromCorpus(dataset);
  std::vector<double> row(extractor.feature_count());
  size_t i = 0;
  for (auto _ : state) {
    extractor.ExtractRow(dataset[i % 200], dataset[(i + 13) % 200],
                         row.data());
    benchmark::DoNotOptimize(row.data());
    ++i;
  }
}
BENCHMARK(BM_LgmXRow);

}  // namespace
