// Reproduces Table 5: precision/recall/F1 of the spatial entity linkage
// baselines against QuadFlex + SkyEx-{D,F,T} on North-DK.

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/skyex_d.h"
#include "core/skyex_f.h"
#include "core/skyex_t.h"
#include "eval/metrics.h"
#include "eval/sampling.h"

namespace {

void PrintRow(const std::string& name, double p, double r, double f1,
              const char* paper) {
  std::printf("%-28s %6.2f %6.2f %6.2f   %s\n", name.c_str(), p, r, f1,
              paper);
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = skyex::bench::ParseFlags(argc, argv);
  const auto d = skyex::bench::PrepareNorthDkBench(config);

  std::printf("Table 5: comparison with the spatial entity linkage "
              "baselines (North-DK)\n\n");
  std::printf("%-28s %6s %6s %6s   %s\n", "Approach", "Prec", "Rec", "F1",
              "paper [P R F1]");
  skyex::bench::PrintRule(78);

  // Non-skyline baselines on the same candidate pairs.
  struct BerjawiSpec {
    bool addr;
    bool flex;
    const char* paper;
  };
  const BerjawiSpec berjawi_specs[] = {
      {true, false, "[0.93 0.26 0.41]"},
      {true, true, "[0.87 0.50 0.63]"},
      {false, false, "[0.73 0.56 0.63]"},
      {false, true, "[0.73 0.56 0.63]"},
  };
  for (const auto& spec : berjawi_specs) {
    const auto r =
        skyex::core::RunBerjawi(d.dataset, d.pairs, spec.addr, spec.flex);
    PrintRow(r.name, r.confusion.Precision(), r.confusion.Recall(),
             r.confusion.F1(), spec.paper);
  }
  {
    const auto r = skyex::core::RunMorana(d.dataset, d.pairs);
    PrintRow(r.name, r.confusion.Precision(), r.confusion.Recall(),
             r.confusion.F1(), "[0.39 0.60 0.47]");
  }
  {
    const auto r = skyex::core::RunKaram(d.dataset, d.pairs);
    PrintRow(r.name, r.confusion.Precision(), r.confusion.Recall(),
             r.confusion.F1(), "[0.23 0.73 0.35]");
  }

  // Skyline methods share a heuristic feature subset in the spirit of
  // the earlier SkyEx works: hand-picked name and address similarities,
  // no training.
  std::vector<size_t> heuristic;
  for (const char* name :
       {"name_sorted_soft_jaccard", "name_cosine_bigrams",
        "name_damerau_levenshtein", "addr_sorted_soft_jaccard"}) {
    const int c = d.features.ColumnIndex(name);
    if (c >= 0) heuristic.push_back(static_cast<size_t>(c));
  }
  const std::vector<size_t> rows = skyex::core::AllRows(d.pairs.size());
  std::vector<uint8_t> truth;
  truth.reserve(rows.size());
  for (size_t r : rows) truth.push_back(d.pairs.labels[r]);

  {
    const auto r = skyex::core::RunSkyExD(d.features, rows, heuristic);
    const auto cm = skyex::eval::Confusion(r.predicted, truth);
    PrintRow("QuadFlex + SkyEx-D", cm.Precision(), cm.Recall(), cm.F1(),
             "[0.85 0.62 0.71]");
  }
  {
    const auto r =
        skyex::core::RunSkyExF(d.features, rows, d.pairs.labels, heuristic);
    PrintRow("QuadFlex + SkyEx-F", r.precision, r.recall, r.f1,
             "[0.87 0.60 0.72]");
  }
  {
    // SkyEx-T with LGM-X features, trained on 4% as in Section 5.
    const auto splits = skyex::eval::DisjointTrainingSplits(
        d.pairs.size(), 0.04, config.reps, config.seed + 300);
    double sp = 0.0;
    double sr = 0.0;
    double sf = 0.0;
    const skyex::core::SkyExT skyex;
    const std::vector<size_t>& all_rows = rows;
    for (const auto& split : splits) {
      const auto model =
          skyex.Train(d.features, d.pairs.labels, split.train,
                      &all_rows);
      const auto eval_rows =
          skyex::bench::CapRows(split.test, config.max_eval);
      const auto predicted =
          skyex::core::SkyExT::Label(d.features, eval_rows, model);
      std::vector<uint8_t> t;
      t.reserve(eval_rows.size());
      for (size_t r : eval_rows) t.push_back(d.pairs.labels[r]);
      const auto cm = skyex::eval::Confusion(predicted, t);
      sp += cm.Precision();
      sr += cm.Recall();
      sf += cm.F1();
    }
    const double n = static_cast<double>(splits.size());
    PrintRow("QuadFlex + SkyEx-T", sp / n, sr / n, sf / n,
             "[0.88 0.63 0.74]");
  }

  std::printf(
      "\nShape check: the three QuadFlex+SkyEx methods lead, SkyEx-T on "
      "top; Berjawi-Flex variants follow; Morana and Karam trail.\n");
  return 0;
}
