// Reproduces Table 6: SkyEx-T versus the ML classifiers on North-DK.

#include <cstdio>

#include "bench_common.h"
#include "ml_compare_common.h"

int main(int argc, char** argv) {
  const auto config = skyex::bench::ParseFlags(argc, argv);
  const auto d = skyex::bench::PrepareNorthDkBench(config);

  std::printf("Table 6: SkyEx-T versus ML techniques on North-DK\n");
  std::printf("(paper F1 ranges: SVM 0.66-0.72, DecisionTree 0.59-0.67, "
              "RandomForest 0.68-0.75,\n ExtraTrees 0.67-0.74, XGBoost "
              "0.67-0.75, MLP 0.68-0.73, SkyEx-T 0.68-0.74;\n SkyEx-T "
              "leads at 0.05%%, 0.1%%, 0.4%% and 4%%)\n\n");

  std::vector<double> fractions = {0.0005, 0.001, 0.004, 0.008, 0.01,
                                   0.04,   0.08,  0.12,  0.16,  0.20, 0.80};
  if (config.fast) fractions = {0.001, 0.01, 0.04};
  skyex::bench::RunMlComparison(d, fractions, config, config.seed + 600);
  std::printf(
      "\nShape check: no single winner across sizes; SkyEx-T competitive "
      "everywhere and strongest on the smallest training sets.\n");
  return 0;
}
