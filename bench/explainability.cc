// The explainability comparison of Section 5.4, made concrete: SkyEx-T's
// model is one readable preference expression, while explaining the
// tree ensemble of comparable accuracy requires a permutation-importance
// pass (Strobl et al.) that costs minutes and yields only global feature
// weights.

#include <cstdio>

#include "bench_common.h"
#include "core/skyex_t.h"
#include "eval/sampling.h"
#include "eval/stopwatch.h"
#include "ml/importance.h"
#include "ml/random_forest.h"

int main(int argc, char** argv) {
  const auto config = skyex::bench::ParseFlags(argc, argv);
  const auto d = skyex::bench::PrepareNorthDkBench(config);
  const auto split =
      skyex::eval::RandomSplit(d.pairs.size(), 0.04, config.seed + 900);
  const std::vector<size_t> all_rows =
      skyex::core::AllRows(d.pairs.size());

  std::printf("--- SkyEx-T: the model IS the explanation ---\n");
  skyex::eval::Stopwatch sky_watch;
  const skyex::core::SkyExT skyex;
  const auto model =
      skyex.Train(d.features, d.pairs.labels, split.train, &all_rows);
  const double sky_ms = sky_watch.ElapsedMillis();
  std::printf("%s\n(training: %.0f ms; nothing further needed)\n\n",
              model.Describe(d.features.names).c_str(), sky_ms);

  std::printf("--- Random forest: post-hoc permutation importance ---\n");
  skyex::eval::Stopwatch rf_watch;
  skyex::ml::RandomForest forest;
  forest.Fit(d.features, d.pairs.labels, split.train);
  const double fit_ms = rf_watch.ElapsedMillis();

  skyex::eval::Stopwatch imp_watch;
  skyex::ml::ImportanceOptions imp_options;
  imp_options.max_rows = config.max_eval / 4;
  const auto importances = skyex::ml::PermutationImportance(
      forest, d.features, d.pairs.labels, split.test, imp_options);
  const double imp_ms = imp_watch.ElapsedMillis();

  std::printf("top-10 of %zu features by F1 drop when shuffled:\n",
              importances.size());
  for (size_t k = 0; k < std::min<size_t>(10, importances.size()); ++k) {
    std::printf("  %-38s %+.4f\n", importances[k].name.c_str(),
                importances[k].importance);
  }
  std::printf(
      "(fit: %.0f ms; explanation pass: %.0f ms — %.0fx the whole "
      "SkyEx-T training, and it still yields only global weights, not a "
      "decision rule)\n",
      fit_ms, imp_ms, imp_ms / std::max(1.0, sky_ms));
  return 0;
}
