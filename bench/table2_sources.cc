// Reproduces Table 2 of the paper: the cross-source distribution of the
// positive (ground-truth) pairs in the North-DK dataset.

#include <cstdio>

#include "bench_common.h"
#include "data/ground_truth.h"

namespace {

using skyex::data::Source;

// Table 2 of the paper (75,541 records); our synthetic dataset follows
// the same distribution at a reduced scale.
constexpr double kPaperCounts[4][4] = {
    {3789, 17405, 902, 7},   // Krak x {Krak, GP, Yelp, FSQ}
    {0, 3546, 968, 13},      // GP
    {0, 0, 460, 12},         // Yelp
    {0, 0, 0, 0},            // FSQ
};
constexpr double kPaperTotal = 27102.0;

}  // namespace

int main(int argc, char** argv) {
  const auto config = skyex::bench::ParseFlags(argc, argv);
  const auto d = skyex::bench::PrepareNorthDkBench(config);

  const skyex::data::SourceCrossTab tab = skyex::data::PositivePairSources(
      d.dataset, d.pairs.pairs, d.pairs.labels);
  double total = 0;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) total += static_cast<double>(tab[a][b]);
  }

  std::printf("Table 2: sources of the positive pairs "
              "(measured count / %% of positives [paper %%])\n\n");
  const Source sources[4] = {Source::kKrak, Source::kGooglePlaces,
                             Source::kYelp, Source::kFoursquare};
  std::printf("%-8s", "Source");
  for (Source s : sources) {
    std::printf("%22s", std::string(skyex::data::SourceName(s)).c_str());
  }
  std::printf("\n");
  skyex::bench::PrintRule(96);
  for (int a = 0; a < 4; ++a) {
    std::printf("%-8s", std::string(SourceName(sources[a])).c_str());
    for (int b = 0; b < 4; ++b) {
      if (b < a) {
        std::printf("%22s", "");
        continue;
      }
      const size_t count =
          tab[static_cast<size_t>(sources[a])][static_cast<size_t>(
              sources[b])];
      const double share = total > 0 ? 100.0 * count / total : 0.0;
      const double paper_share = 100.0 * kPaperCounts[a][b] / kPaperTotal;
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%zu / %4.1f%% [%4.1f%%]", count,
                    share, paper_share);
      std::printf("%22s", cell);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: Krak-GP dominates (paper 64.2%% of positives); "
      "same-source pairs (paper 28.7%%) are mostly Krak-Krak and GP-GP; "
      "FSQ is negligible.\n");
  return 0;
}
