// Reproduces Table 3: SkyEx-T F-measure with the learned cut-off c_t
// versus the optimal cut-off c* on North-DK, across training sizes.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/skyex_t.h"
#include "eval/metrics.h"
#include "eval/sampling.h"

namespace {

struct PaperRow {
  double fraction;
  double f1_ct;   // paper: SkyEx-T F-measure
  double f1_opt;  // paper: F-measure for c*
};

// Table 3 of the paper. The 80% row has no learned-c_t entry there; we
// still measure ours.
const PaperRow kPaper[] = {
    {0.0005, 0.682, 0.707}, {0.001, 0.690, 0.715}, {0.004, 0.708, 0.714},
    {0.008, 0.705, 0.718},  {0.01, 0.706, 0.713},  {0.04, 0.736, 0.740},
    {0.08, 0.717, 0.721},   {0.12, 0.718, 0.719},  {0.16, 0.711, 0.712},
    {0.20, 0.711, 0.712},   {0.80, 0.727, 0.727},
};

}  // namespace

int main(int argc, char** argv) {
  const auto config = skyex::bench::ParseFlags(argc, argv);
  const auto d = skyex::bench::PrepareNorthDkBench(config);

  std::printf("Table 3: SkyEx-T F1 for learned c_t vs optimal c* "
              "(North-DK, averages over disjoint training sets)\n\n");
  std::printf("%9s %6s %10s %10s %8s %8s   %s\n", "train", "reps",
              "F1(c_t)", "F1(c*)", "diff", "diff%", "paper F1(c_t)/F1(c*)");
  skyex::bench::PrintRule(96);

  const skyex::core::SkyExT skyex;
  const std::vector<size_t> all_rows =
      skyex::core::AllRows(d.pairs.size());
  for (const PaperRow& row : kPaper) {
    // Large training sets are expensive; fewer repetitions suffice (the
    // paper's variance also vanishes there).
    size_t reps = config.reps;
    if (row.fraction > 0.05) reps = std::min<size_t>(reps, 3);
    if (row.fraction > 0.5) reps = 1;

    const auto splits = skyex::eval::DisjointTrainingSplits(
        d.pairs.size(), row.fraction, reps, config.seed + 100);
    double sum_ct = 0.0;
    double sum_opt = 0.0;
    for (const auto& split : splits) {
      const auto model =
          skyex.Train(d.features, d.pairs.labels, split.train,
                      &all_rows);
      const std::vector<size_t> eval_rows =
          skyex::bench::CapRows(split.test, config.max_eval);

      const auto predicted =
          skyex::core::SkyExT::Label(d.features, eval_rows, model);
      std::vector<uint8_t> truth;
      truth.reserve(eval_rows.size());
      for (size_t r : eval_rows) truth.push_back(d.pairs.labels[r]);
      sum_ct += skyex::eval::Confusion(predicted, truth).F1();

      const auto oracle = skyex::core::SweepCutoffOverSkylines(
          d.features, eval_rows, d.pairs.labels, *model.preference);
      sum_opt += oracle.best_f1;
    }
    const double n = static_cast<double>(splits.size());
    const double f1_ct = sum_ct / n;
    const double f1_opt = sum_opt / n;
    const double diff = f1_opt - f1_ct;
    std::printf("%8.2f%% %6zu %10.3f %10.3f %8.3f %7.2f%%   [%.3f / %.3f]\n",
                100.0 * row.fraction, splits.size(), f1_ct, f1_opt, diff,
                f1_opt > 0 ? 100.0 * diff / f1_opt : 0.0, row.f1_ct,
                row.f1_opt);
  }
  std::printf(
      "\nShape check: the learned cut-off is near-optimal at every size "
      "(paper: <=3.5%% loss at the tiniest sizes, <1%% beyond 0.4%%).\n");
  return 0;
}
