// Ablation study of SkyEx-T's design choices (DESIGN.md §5):
//   (a) MI-based feature de-duplication on/off,
//   (b) the prioritized second group (▷) vs a single Pareto block,
//   (c) the full LGM-X feature set vs the 14 basic similarities only.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/skyex_t.h"
#include "eval/metrics.h"
#include "eval/sampling.h"

namespace {

double AverageF1(const skyex::core::PreparedData& d,
                 const skyex::ml::FeatureMatrix& features,
                 const skyex::core::SkyExTOptions& options,
                 const skyex::bench::BenchConfig& config) {
  const auto splits = skyex::eval::DisjointTrainingSplits(
      d.pairs.size(), 0.04, config.reps, config.seed + 800);
  const skyex::core::SkyExT skyex(options);
  const std::vector<size_t> all_rows =
      skyex::core::AllRows(features.rows);
  double total = 0.0;
  for (const auto& split : splits) {
    const auto model = skyex.Train(features, d.pairs.labels, split.train, &all_rows);
    const auto eval_rows =
        skyex::bench::CapRows(split.test, config.max_eval);
    const auto predicted =
        skyex::core::SkyExT::Label(features, eval_rows, model);
    std::vector<uint8_t> truth;
    truth.reserve(eval_rows.size());
    for (size_t r : eval_rows) truth.push_back(d.pairs.labels[r]);
    total += skyex::eval::Confusion(predicted, truth).F1();
  }
  return total / static_cast<double>(splits.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = skyex::bench::ParseFlags(argc, argv);
  const auto d = skyex::bench::PrepareNorthDkBench(config);

  // Basic-only variant: the first 14 columns of each textual attribute
  // plus the numeric/spatial features.
  std::vector<size_t> basic_columns;
  for (size_t c = 0; c < d.features.cols; ++c) {
    const std::string& n = d.features.names[c];
    const bool basic_text =
        (n.rfind("name_", 0) == 0 || n.rfind("addr_", 0) == 0) &&
        n.find("sorted") == std::string::npos &&
        n.find("lgm") == std::string::npos;
    if (basic_text || n == "addr_number_sim" || n == "geo_sim") {
      basic_columns.push_back(c);
    }
  }
  const skyex::ml::FeatureMatrix basic =
      d.features.SelectColumns(basic_columns);

  std::printf("SkyEx-T ablations on North-DK (4%% training, avg F1)\n\n");
  std::printf("%-44s %8s\n", "Configuration", "F1");
  skyex::bench::PrintRule(56);

  skyex::core::SkyExTOptions base;
  std::printf("%-44s %8.3f\n", "full SkyEx-T (LGM-X, MI dedup, priority)",
              AverageF1(d, d.features, base, config));

  skyex::core::SkyExTOptions no_dedup = base;
  no_dedup.use_mi_dedup = false;
  std::printf("%-44s %8.3f\n", "- without MI de-duplication",
              AverageF1(d, d.features, no_dedup, config));

  skyex::core::SkyExTOptions no_priority = base;
  no_priority.use_priority = false;
  std::printf("%-44s %8.3f\n", "- single Pareto block (no priority group)",
              AverageF1(d, d.features, no_priority, config));

  std::printf("%-44s %8.3f\n", "- basic similarities only (no LGM-X)",
              AverageF1(d, basic, base, config));
  return 0;
}
