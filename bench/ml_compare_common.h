#ifndef SKYEX_BENCH_ML_COMPARE_COMMON_H_
#define SKYEX_BENCH_ML_COMPARE_COMMON_H_

// Shared driver for Tables 6 and 7: SkyEx-T versus the six from-scratch
// ML classifiers on LGM-X features, averaged over disjoint training sets.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/skyex_t.h"
#include "eval/metrics.h"
#include "eval/sampling.h"
#include "ml/decision_tree.h"
#include "ml/extra_trees.h"
#include "ml/gradient_boosting.h"
#include "ml/linear_svm.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"

namespace skyex::bench {

inline std::vector<std::unique_ptr<ml::Classifier>> MakeClassifiers() {
  std::vector<std::unique_ptr<ml::Classifier>> out;
  out.push_back(std::make_unique<ml::LinearSvm>());
  out.push_back(std::make_unique<ml::DecisionTree>());
  out.push_back(std::make_unique<ml::RandomForest>());
  out.push_back(std::make_unique<ml::ExtraTrees>());
  out.push_back(std::make_unique<ml::GradientBoosting>());
  out.push_back(std::make_unique<ml::Mlp>());
  return out;
}

/// Runs the comparison and prints the two blocks of the paper's tables:
/// F-measures, then percentage distance from the per-size maximum.
inline void RunMlComparison(const core::PreparedData& d,
                            const std::vector<double>& fractions,
                            const BenchConfig& config, uint64_t seed) {
  const size_t num_methods = 7;  // 6 classifiers + SkyEx-T
  std::vector<std::string> method_names = {
      "SVM",     "DecisionTree", "RandomForest", "ExtraTrees",
      "XGBoost", "MLP",          "SkyEx-T"};
  const std::vector<size_t> all_rows = core::AllRows(d.pairs.size());
  // f1[method][size]
  std::vector<std::vector<double>> f1(
      num_methods, std::vector<double>(fractions.size(), 0.0));

  for (size_t s = 0; s < fractions.size(); ++s) {
    size_t reps = config.reps;
    if (fractions[s] > 0.02) reps = std::min<size_t>(reps, 3);
    if (fractions[s] > 0.5) reps = 1;
    const auto splits = eval::DisjointTrainingSplits(
        d.pairs.size(), fractions[s], reps, seed + s);
    std::vector<double> sums(num_methods, 0.0);
    for (const auto& split : splits) {
      const auto eval_rows = CapRows(split.test, config.max_eval);
      std::vector<uint8_t> truth;
      truth.reserve(eval_rows.size());
      for (size_t r : eval_rows) truth.push_back(d.pairs.labels[r]);

      auto classifiers = MakeClassifiers();
      for (size_t m = 0; m < classifiers.size(); ++m) {
        classifiers[m]->Fit(d.features, d.pairs.labels, split.train);
        const auto predicted =
            classifiers[m]->Predict(d.features, eval_rows);
        sums[m] += eval::Confusion(predicted, truth).F1();
      }
      const core::SkyExT skyex;
      const auto model = skyex.Train(d.features, d.pairs.labels,
                                     split.train, &all_rows);
      const auto predicted =
          core::SkyExT::Label(d.features, eval_rows, model);
      sums[6] += eval::Confusion(predicted, truth).F1();
    }
    for (size_t m = 0; m < num_methods; ++m) {
      f1[m][s] = sums[m] / static_cast<double>(splits.size());
    }
    std::printf("# finished training size %.2f%% (%zu reps)\n",
                100.0 * fractions[s], splits.size());
  }

  std::printf("\nF-measure\n%-14s", "Training size");
  for (double f : fractions) std::printf("%9.2f%%", 100.0 * f);
  std::printf("\n");
  PrintRule(14 + 10 * fractions.size());
  for (size_t m = 0; m < num_methods; ++m) {
    std::printf("%-14s", method_names[m].c_str());
    for (size_t s = 0; s < fractions.size(); ++s) {
      std::printf("%10.3f", f1[m][s]);
    }
    std::printf("\n");
  }

  std::printf("\nDifference from max F-measure in %%\n%-14s",
              "Training size");
  for (double f : fractions) std::printf("%9.2f%%", 100.0 * f);
  std::printf("\n");
  PrintRule(14 + 10 * fractions.size());
  for (size_t m = 0; m < num_methods; ++m) {
    std::printf("%-14s", method_names[m].c_str());
    for (size_t s = 0; s < fractions.size(); ++s) {
      double best = 0.0;
      for (size_t mm = 0; mm < num_methods; ++mm) {
        best = std::max(best, f1[mm][s]);
      }
      const double diff =
          best > 0 ? 100.0 * (best - f1[m][s]) / best : 0.0;
      std::printf("%9.2f%%", diff);
    }
    std::printf("\n");
  }
}

}  // namespace skyex::bench

#endif  // SKYEX_BENCH_ML_COMPARE_COMMON_H_
