// Quickstart: the full SkyEx-T pipeline in ~60 lines.
//
//   1. get spatial entity records (here: a small synthetic dataset),
//   2. block them spatially with QuadFlex,
//   3. label candidate pairs with the phone/website ground-truth rule,
//   4. extract LGM-X similarity features,
//   5. train SkyEx-T on a small labeled sample,
//   6. label the rest and measure quality.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/pipeline.h"
#include "core/skyex_t.h"
#include "eval/metrics.h"
#include "eval/sampling.h"

int main() {
  // Steps 1-4 are bundled in PrepareNorthDk; see multi_source_linkage.cc
  // for the unbundled version.
  skyex::data::NorthDkOptions data_options;
  data_options.num_entities = 3000;
  std::printf("Generating %zu spatial entity records...\n",
              data_options.num_entities);
  const skyex::core::PreparedData d =
      skyex::core::PrepareNorthDk(data_options);
  std::printf("QuadFlex produced %zu candidate pairs (%.1f%% positive).\n",
              d.pairs.size(), 100.0 * d.pairs.PositiveRate());

  // Step 5: train on 4% of the pairs — SkyEx-T is designed for tiny
  // training sets (the paper goes down to 0.05%).
  const auto split =
      skyex::eval::RandomSplit(d.pairs.size(), 0.04, /*seed=*/42);
  const skyex::core::SkyExT skyex;
  const skyex::core::SkyExTModel model =
      skyex.Train(d.features, d.pairs.labels, split.train);

  std::printf("\nLearned preference function (human-readable!):\n%s\n\n",
              model.Describe(d.features.names).c_str());

  // Step 6: label the unseen pairs.
  const std::vector<uint8_t> predicted =
      skyex::core::SkyExT::Label(d.features, split.test, model);
  std::vector<uint8_t> truth;
  truth.reserve(split.test.size());
  for (size_t r : split.test) truth.push_back(d.pairs.labels[r]);
  const skyex::eval::ConfusionMatrix cm =
      skyex::eval::Confusion(predicted, truth);
  std::printf("Test-set quality: precision=%.3f recall=%.3f F1=%.3f\n",
              cm.Precision(), cm.Recall(), cm.F1());
  return 0;
}
