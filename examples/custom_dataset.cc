// Scenario: running the pipeline on your own data. Entities are loaded
// from a CSV file (the schema of data/csv.h); this example first writes
// a sample file so it is runnable out of the box — replace the path with
// your own export.
//
// CSV schema (header row required):
//   id,source,name,address_name,address_number,city,phone,website,
//   categories,lat,lon,physical_id
// `categories` is ';'-separated; lat/lon may be empty (no coordinates →
// Cartesian pairing); physical_id may be 0 (unknown).

#include <cstdio>
#include <string>

#include "core/skyex_t.h"
#include "data/csv.h"
#include "data/ground_truth.h"
#include "data/northdk_generator.h"
#include "eval/metrics.h"
#include "eval/sampling.h"
#include "features/lgm_x.h"
#include "geo/quadflex.h"

int main(int argc, char** argv) {
  std::string path = "custom_entities.csv";
  if (argc > 1) {
    path = argv[1];
  } else {
    // Write a runnable sample file.
    skyex::data::NorthDkOptions options;
    options.num_entities = 1500;
    if (!skyex::data::WriteDatasetCsv(
            skyex::data::GenerateNorthDk(options), path)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("(no CSV given — wrote a sample dataset to %s)\n\n",
                path.c_str());
  }

  skyex::data::Dataset dataset;
  if (!skyex::data::ReadDatasetCsv(path, &dataset)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::printf("Loaded %zu records from %s.\n", dataset.size(), path.c_str());

  // Blocking: QuadFlex when coordinates exist, Cartesian otherwise.
  const bool has_coordinates =
      !dataset.entities.empty() && dataset.entities.front().location.valid;
  const auto pairs =
      has_coordinates
          ? skyex::geo::QuadFlexBlock(dataset.Points())
          : skyex::geo::CartesianBlock(dataset.size());
  std::printf("%s blocking: %zu candidate pairs.\n",
              has_coordinates ? "QuadFlex" : "Cartesian", pairs.size());

  // Ground truth: phone/website rule. For your own data you can instead
  // load reviewed labels and skip this.
  const auto labels = skyex::data::LabelPairs(dataset, pairs);

  const auto extractor =
      skyex::features::LgmXExtractor::FromCorpus(dataset);
  const auto features = extractor.Extract(dataset, pairs);

  const auto split = skyex::eval::RandomSplit(pairs.size(), 0.05, 1);
  const skyex::core::SkyExT skyex;
  const auto model = skyex.Train(features, labels, split.train);
  const auto predicted =
      skyex::core::SkyExT::Label(features, split.test, model);

  std::vector<uint8_t> truth;
  truth.reserve(split.test.size());
  for (size_t r : split.test) truth.push_back(labels[r]);
  std::printf("\n%s\n\nResult: %s\n",
              model.Describe(features.names).c_str(),
              skyex::eval::Confusion(predicted, truth).ToString().c_str());
  return 0;
}
