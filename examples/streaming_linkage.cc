// Scenario: a live feed of POI records arriving one by one (the
// scalability direction the paper lists as future work). A SkyEx-T
// model is trained once on an initial batch; the IncrementalLinker then
// matches each arriving record against the current dataset in
// milliseconds instead of re-running the whole pipeline.

#include <cstdio>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "core/skyex_t.h"
#include "eval/sampling.h"
#include "eval/stopwatch.h"

int main() {
  // Initial batch + training.
  skyex::data::NorthDkOptions options;
  options.num_entities = 2500;
  options.seed = 19;
  const skyex::core::PreparedData d = skyex::core::PrepareNorthDk(options);
  const auto split = skyex::eval::RandomSplit(d.pairs.size(), 0.08, 2);
  const skyex::core::SkyExT skyex;
  auto model = skyex.Train(d.features, d.pairs.labels, split.train);
  std::printf("Trained on the initial batch of %zu records.\n%s\n\n",
              d.dataset.size(), model.Describe(d.features.names).c_str());

  std::vector<size_t> accepted;
  for (size_t r : split.train) {
    if (d.pairs.labels[r]) accepted.push_back(r);
  }
  skyex::core::IncrementalLinkerOptions linker_options;
  // The synthetic feed is noisy (chains, shared buildings): calibrate
  // conservatively so only solid matches auto-link.
  linker_options.calibration_percentile = 0.5;
  skyex::core::IncrementalLinker linker(
      d.dataset, skyex::features::LgmXExtractor::FromCorpus(d.dataset),
      std::move(model), d.features, accepted, linker_options);

  // Simulate the stream: perturbed duplicates of existing records mixed
  // with brand-new entities.
  skyex::data::NorthDkOptions fresh_options;
  fresh_options.num_entities = 60;
  fresh_options.seed = 77;
  const skyex::data::Dataset fresh =
      skyex::data::GenerateNorthDk(fresh_options);

  skyex::eval::Stopwatch watch;
  size_t arrived = 0;
  size_t linked = 0;
  for (size_t k = 0; k < 60; ++k) {
    skyex::data::SpatialEntity incoming;
    if (k % 2 == 0) {
      incoming = linker.dataset()[(k * 37) % d.dataset.size()];
      incoming.id = 900000 + k;
      incoming.location.lat += 1e-5;  // fresh GPS fix
    } else {
      incoming = fresh[k];
      incoming.id = 900000 + k;
    }
    const auto links = linker.AddRecord(incoming);
    ++arrived;
    if (!links.empty()) {
      ++linked;
      if (linked <= 5) {
        std::printf("  \"%s\" linked to \"%s\"%s\n", incoming.name.c_str(),
                    linker.dataset()[links[0]].name.c_str(),
                    links.size() > 1 ? " (+ more)" : "");
      }
    }
  }
  std::printf(
      "\nProcessed %zu arrivals in %.1f ms (%.2f ms/record); %zu were "
      "linked to existing entities.\n",
      arrived, watch.ElapsedMillis(), watch.ElapsedMillis() / arrived,
      linked);
  return 0;
}
