// Scenario: explaining individual linkage decisions — the paper's core
// selling point over black-box ML. For a trained SkyEx-T model this
// example shows, for a few pairs, the feature values the preference
// reads and which preference group decided the comparison against a
// reference pair from the positive region.

#include <cstdio>
#include <vector>

#include "core/pipeline.h"
#include "core/skyex_t.h"
#include "eval/sampling.h"
#include "skyline/dominance.h"

namespace {

const char* ComparisonName(skyex::skyline::Comparison c) {
  switch (c) {
    case skyex::skyline::Comparison::kBetter:
      return "PREFERRED over";
    case skyex::skyline::Comparison::kWorse:
      return "dominated by";
    case skyex::skyline::Comparison::kEqual:
      return "tied with";
    case skyex::skyline::Comparison::kIncomparable:
      return "incomparable to";
  }
  return "?";
}

}  // namespace

int main() {
  skyex::data::NorthDkOptions options;
  options.num_entities = 2500;
  const skyex::core::PreparedData d = skyex::core::PrepareNorthDk(options);

  const auto split = skyex::eval::RandomSplit(d.pairs.size(), 0.05, 5);
  const skyex::core::SkyExT skyex;
  const auto model = skyex.Train(d.features, d.pairs.labels, split.train);

  std::printf("The whole model is one readable preference function and a "
              "cut-off ratio:\n\n%s\n\n",
              model.Describe(d.features.names).c_str());
  std::printf("Group 1 (decides first)            Group 2 (tie-break)\n");
  for (size_t k = 0;
       k < std::max(model.group1.size(), model.group2.size()); ++k) {
    std::printf("  %-32s %s\n",
                k < model.group1.size()
                    ? d.features.names[model.group1[k].column].c_str()
                    : "",
                k < model.group2.size()
                    ? d.features.names[model.group2[k].column].c_str()
                    : "");
  }

  // Collect the features the preference reads.
  std::vector<size_t> used;
  model.preference->CollectFeatures(&used);

  // Pick one labeled-positive pair as the reference, then explain how a
  // few other pairs compare to it under the preference.
  size_t reference = split.test[0];
  for (size_t r : split.test) {
    if (d.pairs.labels[r]) {
      reference = r;
      break;
    }
  }
  const auto& [ri, rj] = d.pairs.pairs[reference];
  std::printf("\nReference pair (a known match):\n  \"%s\"  <->  \"%s\"\n",
              d.dataset[ri].name.c_str(), d.dataset[rj].name.c_str());

  std::printf("\nHow other pairs compare under p:\n");
  size_t shown = 0;
  for (size_t k = 1; k < split.test.size() && shown < 6; k += 97) {
    const size_t row = split.test[k];
    const auto& [i, j] = d.pairs.pairs[row];
    const auto verdict = model.preference->Compare(
        d.features.Row(row), d.features.Row(reference));
    std::printf("\n  \"%s\" <-> \"%s\"\n    is %s the reference.\n",
                d.dataset[i].name.c_str(), d.dataset[j].name.c_str(),
                ComparisonName(verdict));
    std::printf("    feature values:");
    for (size_t c : used) {
      std::printf(" %s=%.2f", d.features.names[c].c_str(),
                  d.features.At(row, c));
    }
    std::printf("\n");
    ++shown;
  }
  std::printf(
      "\nNothing else is in the model — no weights, no hidden layers: the "
      "label of a pair is determined by which skyline it lands in.\n");
  return 0;
}
