// Scenario: linking spatial entities across four POI sources (the
// North-DK setting of the paper), using every pipeline stage explicitly:
// generation → QuadFlex blocking → ground truth → LGM-X features →
// SkyEx-T → linked-record export.

#include <cstdio>

#include "core/skyex_t.h"
#include "data/csv.h"
#include "data/ground_truth.h"
#include "data/northdk_generator.h"
#include "eval/metrics.h"
#include "eval/sampling.h"
#include "features/lgm_x.h"
#include "geo/quadflex.h"

int main() {
  // 1. Records from four sources (synthetic stand-in for Krak, Google
  //    Places, Yelp, Foursquare).
  skyex::data::NorthDkOptions data_options;
  data_options.num_entities = 4000;
  const skyex::data::Dataset dataset =
      skyex::data::GenerateNorthDk(data_options);
  std::printf("Loaded %zu records. Source mix:\n", dataset.size());
  for (const auto& [source, fraction] : dataset.SourceMix()) {
    std::printf("  %-6s %5.1f%%\n",
                std::string(skyex::data::SourceName(source)).c_str(),
                100.0 * fraction);
  }

  // 2. Spatial blocking: QuadFlex adapts its pairing radius to the local
  //    density (small in city centers, large in the countryside).
  skyex::geo::QuadFlexOptions blocking;
  const auto pairs = skyex::geo::QuadFlexBlock(dataset.Points(), blocking);
  std::printf("QuadFlex: %zu candidate pairs (vs %zu Cartesian).\n",
              pairs.size(), dataset.size() * (dataset.size() - 1) / 2);

  // 3. Ground truth from the phone/website rule (those attributes are
  //    then excluded from the features).
  const auto labels = skyex::data::LabelPairs(dataset, pairs);

  // 4. LGM-X features; the frequent-term dictionaries come from the
  //    corpus itself.
  const auto extractor =
      skyex::features::LgmXExtractor::FromCorpus(dataset);
  const auto features = extractor.Extract(dataset, pairs);
  std::printf("Extracted %zu features per pair.\n\n", features.cols);

  // 5. SkyEx-T on a 4% training sample.
  const auto split = skyex::eval::RandomSplit(pairs.size(), 0.04, 11);
  const skyex::core::SkyExT skyex;
  const auto model = skyex.Train(features, labels, split.train);
  std::printf("%s\n\n", model.Describe(features.names).c_str());

  const auto predicted =
      skyex::core::SkyExT::Label(features, split.test, model);
  std::vector<uint8_t> truth;
  truth.reserve(split.test.size());
  for (size_t r : split.test) truth.push_back(labels[r]);
  const auto cm = skyex::eval::Confusion(predicted, truth);
  std::printf("Linkage quality on unseen pairs: %s\n\n",
              cm.ToString().c_str());

  // 6. Export a linked sample for inspection.
  std::printf("Sample of linked cross-source records:\n");
  size_t shown = 0;
  for (size_t k = 0; k < split.test.size() && shown < 8; ++k) {
    if (!predicted[k]) continue;
    const auto [i, j] = pairs[split.test[k]];
    if (dataset[i].source == dataset[j].source) continue;
    std::printf("  %-28s (%s, %s %d)  <->  %-28s (%s, %s %d)\n",
                dataset[i].name.c_str(),
                std::string(SourceName(dataset[i].source)).c_str(),
                dataset[i].address_name.c_str(), dataset[i].address_number,
                dataset[j].name.c_str(),
                std::string(SourceName(dataset[j].source)).c_str(),
                dataset[j].address_name.c_str(),
                dataset[j].address_number);
    ++shown;
  }

  // The dataset itself can be persisted / reloaded via CSV:
  //   skyex::data::WriteDatasetCsv(dataset, "entities.csv");
  return 0;
}
