// Scenario: de-duplicating a restaurant directory merged from two
// providers (the Fodor's/Zagat setting of the paper). The records have
// no coordinates, so blocking is the full Cartesian product and the
// spatial feature is inactive — SkyEx-T handles that transparently
// (missing attributes yield 0-valued features).
//
// The example prints the duplicate pairs SkyEx-T discovers, with their
// source records, and the precision/recall against the hidden truth.

#include <cstdio>

#include "core/pipeline.h"
#include "core/skyex_t.h"
#include "eval/metrics.h"
#include "eval/sampling.h"

int main() {
  skyex::data::RestaurantsOptions options;
  const skyex::core::PreparedData d = skyex::core::PrepareRestaurants(
      options, {}, /*max_pairs=*/30000);
  std::printf("Restaurant directory: %zu records from two providers, "
              "%zu candidate pairs.\n",
              d.dataset.size(), d.pairs.size());

  // A realistic labeling budget: 8% of the pairs carry a reviewed label.
  const auto split =
      skyex::eval::RandomSplit(d.pairs.size(), 0.08, /*seed=*/3);
  const skyex::core::SkyExT skyex;
  const auto model = skyex.Train(d.features, d.pairs.labels, split.train);
  std::printf("\nTrained preference:\n%s\n\n",
              model.Describe(d.features.names).c_str());

  const auto predicted =
      skyex::core::SkyExT::Label(d.features, split.test, model);

  std::printf("Discovered duplicates (first 12 shown):\n");
  size_t shown = 0;
  size_t found = 0;
  for (size_t k = 0; k < split.test.size(); ++k) {
    if (!predicted[k]) continue;
    ++found;
    if (shown >= 12) continue;
    const auto [i, j] = d.pairs.pairs[split.test[k]];
    const auto& a = d.dataset[i];
    const auto& b = d.dataset[j];
    std::printf("  [%s] %-32s | [%s] %-32s %s\n",
                std::string(skyex::data::SourceName(a.source)).c_str(),
                a.name.c_str(),
                std::string(skyex::data::SourceName(b.source)).c_str(),
                b.name.c_str(),
                d.pairs.labels[split.test[k]] ? "(correct)" : "(spurious)");
    ++shown;
  }
  std::printf("  ... %zu predicted duplicates in total\n\n", found);

  std::vector<uint8_t> truth;
  truth.reserve(split.test.size());
  for (size_t r : split.test) truth.push_back(d.pairs.labels[r]);
  const auto cm = skyex::eval::Confusion(predicted, truth);
  std::printf("Against the hidden ground truth: %s\n",
              cm.ToString().c_str());
  return 0;
}
