#!/usr/bin/env bash
# Parallel-speedup snapshot: runs the micro_skyline, micro_lgm and
# micro_ml suites at --threads=1 and --threads=N (default: all cores)
# and writes BENCH_parallel.json at the repo root with per-benchmark
# ops/sec plus the N-thread speedup over the serial run.
#
#   scripts/bench_snapshot.sh [build-dir] [threads]
#
# Speedup is hardware-dependent: on a single-core host the parallel run
# degenerates to the serial path and speedups hover around 1.0 — the
# recorded host_cpus field says which case a snapshot captured.
#
# Observability-overhead snapshot: compares micro_skyline between the
# default build (SKYEX_SPAN / counter macros live, collector disabled —
# the serving configuration) and a SKYEX_OBS=OFF build where the macros
# compile out, and writes BENCH_obs.json with the per-benchmark
# overhead of carrying the instrumentation:
#
#   scripts/bench_snapshot.sh --obs [obs-on-build-dir] [obs-off-build-dir]

set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--obs" ]; then
  ON_DIR="${2:-build}"
  OFF_DIR="${3:-build-obs-off}"
  OUT="BENCH_obs.json"
  TMP_DIR="$(mktemp -d)"
  trap 'rm -rf "$TMP_DIR"' EXIT
  FILTER='BM_PeelFirstSkyline|BM_FullLayering'

  cmake -B "$ON_DIR" -S . >/dev/null
  cmake --build "$ON_DIR" -j --target micro_skyline
  cmake -B "$OFF_DIR" -S . -DSKYEX_OBS=OFF >/dev/null
  cmake --build "$OFF_DIR" -j --target micro_skyline

  for leg in on off; do
    dir_var="ON_DIR"; [ "$leg" = "off" ] && dir_var="OFF_DIR"
    echo "=== micro_skyline (obs ${leg}) ==="
    "${!dir_var}/bench/micro_skyline" --threads=1 \
      --benchmark_filter="$FILTER" \
      --benchmark_format=json \
      --benchmark_out="$TMP_DIR/obs_${leg}.json" \
      --benchmark_out_format=json >/dev/null
  done

  python3 - "$TMP_DIR" "$OUT" <<'EOF'
import json, os, sys

tmp_dir, out_path = sys.argv[1], sys.argv[2]

def load(leg):
    with open(os.path.join(tmp_dir, f"obs_{leg}.json")) as f:
        report = json.load(f)
    return {b["name"]: b for b in report["benchmarks"]
            if b.get("run_type", "iteration") == "iteration"}

on, off = load("on"), load("off")
snapshot = {"host_cpus": os.cpu_count(), "benchmarks": []}
for name in on:
    if name not in off:
        continue
    on_ns, off_ns = on[name]["real_time"], off[name]["real_time"]
    unit = on[name].get("time_unit", "ns")
    scale = {"ns": 1e9, "us": 1e6, "ms": 1e3, "s": 1.0}[unit]
    snapshot["benchmarks"].append({
        "name": name,
        "ops_per_sec_obs_on": scale / on_ns if on_ns else 0.0,
        "ops_per_sec_obs_off": scale / off_ns if off_ns else 0.0,
        # > 0 means the instrumentation costs that fraction of runtime.
        "span_overhead_fraction":
            (on_ns - off_ns) / off_ns if off_ns else 0.0,
    })

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")

print(f"wrote {out_path} ({len(snapshot['benchmarks'])} benchmarks)")
for b in snapshot["benchmarks"]:
    print(f"  {b['name']:<40} overhead "
          f"{100.0 * b['span_overhead_fraction']:+.2f}%")
EOF
  exit 0
fi

BUILD_DIR="${1:-build}"
THREADS="${2:-$(nproc)}"
# The parallel leg must actually engage the pool; on a 1-core host
# compare against an (oversubscribed) 2-thread run rather than itself.
if [ "$THREADS" -le 1 ]; then THREADS=2; fi
OUT="BENCH_parallel.json"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

# Filter to the suites with pool-backed parallel paths; the rest of the
# micro benches measure serial kernels and would only add noise here.
declare -A FILTERS=(
  [micro_skyline]='BM_PeelFirstSkyline|BM_FullLayering'
  [micro_lgm]='BM_LgmSimDamerau|BM_LgmIndividualScores'
  [micro_ml]='BM_FitRandomForest|BM_FitExtraTrees|BM_FitGradientBoosting'
)

cmake --build "$BUILD_DIR" -j --target micro_skyline micro_lgm micro_ml

for bench in micro_skyline micro_lgm micro_ml; do
  for t in 1 "$THREADS"; do
    echo "=== $bench --threads=$t ==="
    "$BUILD_DIR/bench/$bench" --threads="$t" \
      --benchmark_filter="${FILTERS[$bench]}" \
      --benchmark_format=json \
      --benchmark_out="$TMP_DIR/${bench}_t${t}.json" \
      --benchmark_out_format=json >/dev/null
  done
done

python3 - "$TMP_DIR" "$THREADS" "$OUT" <<'EOF'
import json, os, sys

tmp_dir, threads, out_path = sys.argv[1], int(sys.argv[2]), sys.argv[3]

def load(bench, t):
    with open(os.path.join(tmp_dir, f"{bench}_t{t}.json")) as f:
        report = json.load(f)
    return {b["name"]: b for b in report["benchmarks"]
            if b.get("run_type", "iteration") == "iteration"}

snapshot = {"host_cpus": os.cpu_count(), "threads": threads,
            "benchmarks": []}
for bench in ("micro_skyline", "micro_lgm", "micro_ml"):
    serial, parallel = load(bench, 1), load(bench, threads)
    for name in serial:
        if name not in parallel:
            continue
        s_ns, p_ns = serial[name]["real_time"], parallel[name]["real_time"]
        unit = serial[name].get("time_unit", "ns")
        scale = {"ns": 1e9, "us": 1e6, "ms": 1e3, "s": 1.0}[unit]
        snapshot["benchmarks"].append({
            "suite": bench,
            "name": name,
            "ops_per_sec_1_thread": scale / s_ns if s_ns else 0.0,
            f"ops_per_sec_{threads}_threads":
                scale / p_ns if p_ns else 0.0,
            "speedup": s_ns / p_ns if p_ns else 0.0,
        })

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")

print(f"wrote {out_path} ({len(snapshot['benchmarks'])} benchmarks, "
      f"threads={threads}, host_cpus={snapshot['host_cpus']})")
for b in snapshot["benchmarks"]:
    print(f"  {b['name']:<40} speedup x{b['speedup']:.2f}")
EOF
