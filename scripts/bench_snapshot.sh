#!/usr/bin/env bash
# Benchmark snapshots, written as BENCH_*.json at the repo root. Every
# snapshot records host metadata (CPU model, core count, 1-minute load
# average, UTC timestamp) and the repetition count, and reports medians
# across repetitions so a single noisy run cannot skew the numbers.
#
# Parallel-speedup snapshot (default): runs the micro_skyline, micro_lgm
# and micro_ml suites at --threads=1 and --threads=N (default: all
# cores) and writes BENCH_parallel.json with per-benchmark median
# ops/sec plus the N-thread speedup over the serial run.
#
#   scripts/bench_snapshot.sh [build-dir] [threads] [reps]
#
# Speedup is hardware-dependent: on a single-core host the parallel run
# degenerates to the serial path and speedups hover around 1.0 — the
# recorded host_cpus field says which case a snapshot captured.
#
# Observability-overhead snapshot: compares micro_skyline between the
# default build (SKYEX_SPAN / counter macros live, collector disabled —
# the serving configuration) and a SKYEX_OBS=OFF build where the macros
# compile out, and writes BENCH_obs.json with the per-benchmark
# overhead of carrying the instrumentation:
#
#   scripts/bench_snapshot.sh --obs [obs-on-build-dir] [obs-off-build-dir] [reps]
#
# Profiler snapshot: boots skyex_serve twice — sampler off, then armed
# at 97 Hz — drives each with skyex_loadgen for [reps] timed runs, and
# writes BENCH_prof.json with the median-throughput overhead of the
# always-on profiler plus a per-phase CPU-attribution table and the
# top-10 functions by self samples, scraped from /debug/pprof/profile
# under load:
#
#   scripts/bench_snapshot.sh --prof [build-dir] [reps]
#
# Sharded-serving snapshot: boots skyex_serve twice — --shards=1, then
# --shards=4 — drives each with a region-skewed skyex_loadgen run for
# [reps] timed runs, and writes BENCH_shard.json with per-leg median
# req/s and p50/p95/p99 latency plus the 4-shard/1-shard throughput
# ratio (noise-clamped like the profiler overhead):
#
#   scripts/bench_snapshot.sh --shard [build-dir] [reps]
#
# Two-stage-extraction snapshot: boots skyex_serve twice — a "before"
# leg that disables every stage of the pipeline this snapshot measures
# (--prefilter-threshold=0 --text-cache=0 --reference-kernels) and an
# "after" leg on the serving defaults (threshold 0.1, 4096-entry text
# LRU, dispatched SIMD kernels) — drives each with skyex_loadgen for
# [reps] timed runs, and writes BENCH_extract.json with per-leg median
# candidate pairs/sec, the speedup, the measured drop rate and cache
# hit rate of the after leg, and the recall/drop-rate curve of the
# sketch pre-filter from `skyex prefilter-eval`:
#
#   scripts/bench_snapshot.sh --extract [build-dir] [reps]
#
# Overhead fractions are clamped at the measured noise floor (the
# cross-repetition spread): a delta indistinguishable from run-to-run
# noise is reported as 0, with the raw value kept alongside.

set -euo pipefail
cd "$(dirname "$0")/.."

# Shared host metadata, exported for the python aggregators below.
HOST_META="$(python3 - <<'EOF'
import json, os, time
model = ""
try:
    with open("/proc/cpuinfo") as f:
        for line in f:
            if line.startswith("model name"):
                model = line.split(":", 1)[1].strip()
                break
except OSError:
    pass
print(json.dumps({
    "cpu_model": model,
    "host_cpus": os.cpu_count(),
    "load_avg_1m": round(os.getloadavg()[0], 2),
    "timestamp_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
}))
EOF
)"
export HOST_META

if [ "${1:-}" = "--prof" ]; then
  BUILD_DIR="${2:-build}"
  REPS="${3:-3}"
  if [ "$REPS" -lt 3 ]; then REPS=3; fi
  OUT="BENCH_prof.json"
  TMP_DIR="$(mktemp -d)"
  SERVER_PID=""
  cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP_DIR"
  }
  trap cleanup EXIT

  cmake --build "$BUILD_DIR" -j --target skyex_cli skyex_serve_bin \
    skyex_loadgen

  "$BUILD_DIR/tools/skyex" generate --dataset=northdk --entities=400 \
    --seed=29 --out="$TMP_DIR/entities.csv"
  "$BUILD_DIR/tools/skyex" train --in="$TMP_DIR/entities.csv" \
    --train-fraction=0.1 --seed=3 --model-out="$TMP_DIR/model.txt" \
    --log-level=warn

  # Boots skyex_serve on an ephemeral port; sets SERVER_PID and PORT.
  boot_server() {  # args: extra server flags
    local port_file="$TMP_DIR/port.txt"
    rm -f "$port_file"
    "$BUILD_DIR/tools/skyex_serve" --model="$TMP_DIR/model.txt" \
      --dataset="$TMP_DIR/entities.csv" --port=0 \
      --port-file="$port_file" --workers=4 --queue-depth=64 \
      --log-level=warn "$@" >"$TMP_DIR/serve.log" 2>&1 &
    SERVER_PID=$!
    PORT=""
    for _ in $(seq 150); do
      if [ -s "$port_file" ]; then PORT="$(cat "$port_file")"; break; fi
      kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "server died during startup:" >&2
        cat "$TMP_DIR/serve.log" >&2
        exit 1
      }
      sleep 0.2
    done
    [ -n "$PORT" ] || { echo "server never bound a port" >&2; exit 1; }
  }

  stop_server() {
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
  }

  run_loadgen() {  # args: output file, connections
    "$BUILD_DIR/tools/skyex_loadgen" --port="$PORT" --requests=600 \
      --connections="${2:-4}" --entities=100 --seed=41 | tee "$1"
  }

  for leg in off on; do
    if [ "$leg" = "on" ]; then
      boot_server --profile-hz=97
    else
      boot_server --profile-hz=0
    fi
    echo "=== loadgen (profiler $leg, port $PORT) ==="
    run_loadgen "$TMP_DIR/warmup_${leg}.txt" >/dev/null  # warmup
    for rep in $(seq "$REPS"); do
      run_loadgen "$TMP_DIR/loadgen_${leg}_${rep}.txt"
    done
    if [ "$leg" = "on" ]; then
      # Scrape the attribution profile while a background load runs so
      # the window sees the real serve/extraction/skyline mix. The load
      # uses one connection fewer than the server has workers: each
      # worker owns a connection, so a saturating closed-loop load
      # would starve the scrape connection until the load ends — and
      # the window would cover an idle server.
      run_loadgen "$TMP_DIR/loadgen_scrape.txt" 3 >/dev/null &
      LOAD_PID=$!
      python3 - "$PORT" "$TMP_DIR" <<'EOF'
import sys, urllib.request
port, tmp = sys.argv[1], sys.argv[2]
base = f"http://127.0.0.1:{port}/debug/pprof"
for url, path in [
    (f"{base}/profile?seconds=3&format=json", f"{tmp}/profile.json"),
    (f"{base}/profile?seconds=3", f"{tmp}/profile.folded"),
    (f"{base}/heap", f"{tmp}/heap.json"),
]:
    with urllib.request.urlopen(url, timeout=60) as r:
        with open(path, "wb") as f:
            f.write(r.read())
EOF
      wait "$LOAD_PID" || true
    fi
    stop_server
  done

  python3 - "$TMP_DIR" "$REPS" "$OUT" <<'EOF'
import json, os, re, statistics, sys

tmp_dir, reps, out_path = sys.argv[1], int(sys.argv[2]), sys.argv[3]

def req_per_sec(leg):
    rates = []
    for rep in range(1, reps + 1):
        with open(os.path.join(tmp_dir, f"loadgen_{leg}_{rep}.txt")) as f:
            m = re.search(r"\(([\d.]+) req/s\)", f.read())
        if not m:
            raise SystemExit(f"no req/s in loadgen_{leg}_{rep}.txt")
        rates.append(float(m.group(1)))
    return rates

off, on = req_per_sec("off"), req_per_sec("on")
off_med, on_med = statistics.median(off), statistics.median(on)
raw = (off_med - on_med) / off_med if off_med else 0.0
# Noise floor: the worse of the two legs' relative spread. An overhead
# smaller than the run-to-run spread is indistinguishable from noise.
def spread(rates, med):
    return (max(rates) - min(rates)) / med if med else 0.0
noise = max(spread(off, off_med), spread(on, on_med))
clamped = raw if abs(raw) > noise else 0.0

with open(os.path.join(tmp_dir, "profile.json")) as f:
    profile = json.load(f)
total = sum(profile["phases"].values()) or 1
attribution = {
    phase: {"samples": count, "fraction": round(count / total, 4)}
    for phase, count in sorted(profile["phases"].items(),
                               key=lambda kv: -kv[1])
}

# Top functions by self samples: the leaf frame of each collapsed line.
self_samples = {}
with open(os.path.join(tmp_dir, "profile.folded")) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        stack, count = line.rsplit(" ", 1)
        leaf = stack.rsplit(";", 1)[-1]
        self_samples[leaf] = self_samples.get(leaf, 0) + int(count)
top = [{"function": name, "self_samples": count,
        "self_fraction": round(count / total, 4)}
       for name, count in sorted(self_samples.items(),
                                 key=lambda kv: -kv[1])[:10]]

with open(os.path.join(tmp_dir, "heap.json")) as f:
    heap = json.load(f)

snapshot = {
    **json.loads(os.environ["HOST_META"]),
    "repetitions": reps,
    "profiler_hz": profile.get("hz", 97),
    "loadgen": {
        "req_per_sec_profiler_off": off,
        "req_per_sec_profiler_on": on,
        "median_req_per_sec_profiler_off": off_med,
        "median_req_per_sec_profiler_on": on_med,
        # raw can be negative (on leg faster) — that is pure noise,
        # which is exactly what the clamp reports.
        "profiler_overhead_fraction_raw": round(raw, 4),
        "profiler_overhead_fraction": round(clamped, 4),
        "noise_floor_fraction": round(noise, 4),
    },
    "cpu_attribution": attribution,
    "top_functions_by_self_samples": top,
    "heap_zones": heap.get("zones", {}),
    "profile_samples": profile.get("samples", 0),
    "profile_dropped": profile.get("dropped", 0),
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
print(f"  throughput: off={off_med:.1f} on={on_med:.1f} req/s  "
      f"overhead={100 * clamped:+.2f}% (raw {100 * raw:+.2f}%, "
      f"noise floor {100 * noise:.2f}%)")
for phase, row in attribution.items():
    print(f"  {phase:<12} {row['samples']:>7} samples "
          f"({100 * row['fraction']:.1f}%)")
EOF
  exit 0
fi

if [ "${1:-}" = "--extract" ]; then
  BUILD_DIR="${2:-build}"
  REPS="${3:-3}"
  if [ "$REPS" -lt 3 ]; then REPS=3; fi
  OUT="BENCH_extract.json"
  TMP_DIR="$(mktemp -d)"
  SERVER_PID=""
  cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP_DIR"
  }
  trap cleanup EXIT

  cmake --build "$BUILD_DIR" -j --target skyex_cli skyex_serve_bin \
    skyex_loadgen

  "$BUILD_DIR/tools/skyex" generate --dataset=northdk --entities=800 \
    --seed=29 --out="$TMP_DIR/entities.csv"
  "$BUILD_DIR/tools/skyex" train --in="$TMP_DIR/entities.csv" \
    --train-fraction=0.1 --seed=3 --model-out="$TMP_DIR/model.txt" \
    --log-level=warn

  # Recall/drop-rate curve of the sketch pre-filter on the same data
  # (batch path, exact accounting against the model's accepted pairs).
  "$BUILD_DIR/tools/skyex" prefilter-eval --in="$TMP_DIR/entities.csv" \
    --train-fraction=0.1 --seed=3 --out="$TMP_DIR/prefilter_eval.json"

  boot_server() {  # args: extra server flags
    local port_file="$TMP_DIR/port.txt"
    rm -f "$port_file"
    "$BUILD_DIR/tools/skyex_serve" --model="$TMP_DIR/model.txt" \
      --dataset="$TMP_DIR/entities.csv" --port=0 \
      --port-file="$port_file" --workers=4 --queue-depth=64 \
      --log-level=warn "$@" >"$TMP_DIR/serve.log" 2>&1 &
    SERVER_PID=$!
    PORT=""
    for _ in $(seq 150); do
      if [ -s "$port_file" ]; then PORT="$(cat "$port_file")"; break; fi
      kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "server died during startup:" >&2
        cat "$TMP_DIR/serve.log" >&2
        exit 1
      }
      sleep 0.2
    done
    [ -n "$PORT" ] || { echo "server never bound a port" >&2; exit 1; }
  }

  stop_server() {
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
  }

  run_loadgen() {  # args: output file
    "$BUILD_DIR/tools/skyex_loadgen" --port="$PORT" --requests=600 \
      --connections=4 --entities=100 --seed=41 | tee "$1"
  }

  for leg in before after; do
    if [ "$leg" = "before" ]; then
      # Pre-PR configuration on the same binary: no sketch filter, no
      # per-entity text cache, straight-line reference kernels.
      boot_server --prefilter-threshold=0 --text-cache=0 \
        --reference-kernels
    else
      boot_server  # serving defaults: threshold 0.1, LRU 4096, SIMD
    fi
    echo "=== loadgen (extraction $leg, port $PORT) ==="
    run_loadgen "$TMP_DIR/warmup_${leg}.txt" >/dev/null  # warmup
    for rep in $(seq "$REPS"); do
      run_loadgen "$TMP_DIR/loadgen_${leg}_${rep}.txt"
    done
    stop_server
  done

  python3 - "$TMP_DIR" "$REPS" "$OUT" <<'EOF'
import json, os, re, statistics, sys

tmp_dir, reps, out_path = sys.argv[1], int(sys.argv[2]), sys.argv[3]

def leg_rows(leg):
    """[(pairs_per_sec, req_per_sec, drop_pct, hit_pct)] per repetition."""
    rows = []
    for rep in range(1, reps + 1):
        with open(os.path.join(tmp_dir, f"loadgen_{leg}_{rep}.txt")) as f:
            text = f.read()
        pairs = re.search(r"([\d.]+) candidate pairs/s scored", text)
        reqs = re.search(r"\(([\d.]+) req/s\)", text)
        drop = re.search(r"candidates dropped \(([\d.]+)%\)", text)
        hits = re.search(r"text-cache hit rate ([\d.]+)%", text)
        if not pairs or not reqs:
            raise SystemExit(f"no throughput in loadgen_{leg}_{rep}.txt "
                             "(is /metrics reachable?)")
        rows.append((float(pairs.group(1)), float(reqs.group(1)),
                     float(drop.group(1)) if drop else 0.0,
                     float(hits.group(1)) if hits else 0.0))
    return rows

def summarize(leg):
    rows = leg_rows(leg)
    return rows, {
        "pairs_per_sec": [r[0] for r in rows],
        "median_pairs_per_sec": statistics.median(r[0] for r in rows),
        "median_req_per_sec": statistics.median(r[1] for r in rows),
        "median_prefilter_drop_pct": statistics.median(r[2] for r in rows),
        "median_text_cache_hit_pct": statistics.median(r[3] for r in rows),
    }

before_rows, before = summarize("before")
after_rows, after = summarize("after")
speedup = (after["median_pairs_per_sec"] / before["median_pairs_per_sec"]
           if before["median_pairs_per_sec"] else 0.0)

with open(os.path.join(tmp_dir, "prefilter_eval.json")) as f:
    curve = json.load(f)
# The serving default threshold: recall/drop the deployed filter pays.
at_default = next((row for row in curve["thresholds"]
                   if abs(row["threshold"] - 0.1) < 1e-9), None)

snapshot = {
    **json.loads(os.environ["HOST_META"]),
    "repetitions": reps,
    "loadgen": {"requests": 600, "connections": 4, "entities": 100},
    # Same binary, pipeline off: --prefilter-threshold=0 --text-cache=0
    # --reference-kernels.
    "before": before,
    # Serving defaults: --prefilter-threshold=0.1 --text-cache=4096,
    # runtime-dispatched SIMD kernels.
    "after": after,
    "pairs_per_sec_speedup": round(speedup, 2),
    "prefilter_recall_at_default_threshold":
        at_default["recall"] if at_default else None,
    "prefilter_drop_rate_at_default_threshold":
        at_default["drop_rate"] if at_default else None,
    "prefilter_curve": curve["thresholds"],
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
print(f"  pairs/sec: before={before['median_pairs_per_sec']:.0f} "
      f"after={after['median_pairs_per_sec']:.0f}  speedup x{speedup:.2f}")
print(f"  after leg: {after['median_prefilter_drop_pct']:.1f}% candidates "
      f"dropped, {after['median_text_cache_hit_pct']:.1f}% text-cache hits")
if at_default:
    print(f"  prefilter @0.1: drop_rate={at_default['drop_rate']:.4f} "
          f"recall={at_default['recall']:.4f}")
EOF
  exit 0
fi

if [ "${1:-}" = "--shard" ]; then
  BUILD_DIR="${2:-build}"
  REPS="${3:-3}"
  if [ "$REPS" -lt 3 ]; then REPS=3; fi
  OUT="BENCH_shard.json"
  TMP_DIR="$(mktemp -d)"
  SERVER_PID=""
  cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP_DIR"
  }
  trap cleanup EXIT

  cmake --build "$BUILD_DIR" -j --target skyex_cli skyex_serve_bin \
    skyex_loadgen

  "$BUILD_DIR/tools/skyex" generate --dataset=northdk --entities=400 \
    --seed=29 --out="$TMP_DIR/entities.csv"
  "$BUILD_DIR/tools/skyex" train --in="$TMP_DIR/entities.csv" \
    --train-fraction=0.1 --seed=3 --model-out="$TMP_DIR/model.txt" \
    --log-level=warn

  boot_server() {  # args: shard count
    local port_file="$TMP_DIR/port.txt"
    rm -f "$port_file"
    "$BUILD_DIR/tools/skyex_serve" --model="$TMP_DIR/model.txt" \
      --dataset="$TMP_DIR/entities.csv" --port=0 \
      --port-file="$port_file" --workers=4 --queue-depth=64 \
      --shards="$1" --log-level=warn >"$TMP_DIR/serve.log" 2>&1 &
    SERVER_PID=$!
    PORT=""
    for _ in $(seq 150); do
      if [ -s "$port_file" ]; then PORT="$(cat "$port_file")"; break; fi
      kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "server died during startup:" >&2
        cat "$TMP_DIR/serve.log" >&2
        exit 1
      }
      sleep 0.2
    done
    [ -n "$PORT" ] || { echo "server never bound a port" >&2; exit 1; }
  }

  stop_server() {
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
  }

  # Region-skewed load: the scatter path is only interesting when some
  # shards see much more traffic than others.
  run_loadgen() {  # args: output file
    "$BUILD_DIR/tools/skyex_loadgen" --port="$PORT" --requests=600 \
      --connections=4 --entities=100 --seed=41 \
      --hotspot=0.6 --hotspot-share=0.15 | tee "$1"
  }

  for leg in 1 4; do
    boot_server "$leg"
    echo "=== loadgen (--shards=$leg, port $PORT) ==="
    run_loadgen "$TMP_DIR/warmup_s${leg}.txt" >/dev/null  # warmup
    for rep in $(seq "$REPS"); do
      run_loadgen "$TMP_DIR/loadgen_s${leg}_${rep}.txt"
    done
    stop_server
  done

  python3 - "$TMP_DIR" "$REPS" "$OUT" <<'EOF'
import json, os, re, statistics, sys

tmp_dir, reps, out_path = sys.argv[1], int(sys.argv[2]), sys.argv[3]

def runs(leg):
    """[(req_per_sec, p50, p95, p99)] across repetitions."""
    rows = []
    for rep in range(1, reps + 1):
        with open(os.path.join(tmp_dir, f"loadgen_s{leg}_{rep}.txt")) as f:
            text = f.read()
        rate = re.search(r"\(([\d.]+) req/s\)", text)
        lat = re.search(r"p50=([\d.]+) p95=([\d.]+) p99=([\d.]+)", text)
        if not rate or not lat:
            raise SystemExit(f"no req/s or latency in loadgen_s{leg}_{rep}.txt")
        rows.append((float(rate.group(1)),
                     float(lat.group(1)), float(lat.group(2)),
                     float(lat.group(3))))
    return rows

def leg_summary(leg):
    rows = runs(leg)
    rates = [r[0] for r in rows]
    return rates, {
        "req_per_sec": rates,
        "median_req_per_sec": statistics.median(rates),
        "median_p50_us": statistics.median(r[1] for r in rows),
        "median_p95_us": statistics.median(r[2] for r in rows),
        "median_p99_us": statistics.median(r[3] for r in rows),
    }

one_rates, one = leg_summary(1)
four_rates, four = leg_summary(4)
one_med, four_med = one["median_req_per_sec"], four["median_req_per_sec"]
raw = (four_med - one_med) / one_med if one_med else 0.0
def spread(rates, med):
    return (max(rates) - min(rates)) / med if med else 0.0
noise = max(spread(one_rates, one_med), spread(four_rates, four_med))
clamped = raw if abs(raw) > noise else 0.0

snapshot = {
    **json.loads(os.environ["HOST_META"]),
    "repetitions": reps,
    "loadgen": {"requests": 600, "connections": 4,
                "hotspot": 0.6, "hotspot_share": 0.15},
    "shards_1": one,
    "shards_4": four,
    # > 0 means the 4-shard server out-throughputs single-shard; on a
    # small host the scatter fan-out usually costs a little instead.
    "shard_throughput_delta_fraction_raw": round(raw, 4),
    "shard_throughput_delta_fraction": round(clamped, 4),
    "noise_floor_fraction": round(noise, 4),
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
print(f"  throughput: shards=1 {one_med:.1f} req/s, "
      f"shards=4 {four_med:.1f} req/s  "
      f"delta={100 * clamped:+.2f}% (raw {100 * raw:+.2f}%, "
      f"noise floor {100 * noise:.2f}%)")
print(f"  latency p99: shards=1 {one['median_p99_us']:.0f}us, "
      f"shards=4 {four['median_p99_us']:.0f}us")
EOF
  exit 0
fi

if [ "${1:-}" = "--obs" ]; then
  ON_DIR="${2:-build}"
  OFF_DIR="${3:-build-obs-off}"
  REPS="${4:-3}"
  if [ "$REPS" -lt 3 ]; then REPS=3; fi
  OUT="BENCH_obs.json"
  TMP_DIR="$(mktemp -d)"
  trap 'rm -rf "$TMP_DIR"' EXIT
  FILTER='BM_PeelFirstSkyline|BM_FullLayering'

  cmake -B "$ON_DIR" -S . >/dev/null
  cmake --build "$ON_DIR" -j --target micro_skyline
  cmake -B "$OFF_DIR" -S . -DSKYEX_OBS=OFF >/dev/null
  cmake --build "$OFF_DIR" -j --target micro_skyline

  for leg in on off; do
    dir_var="ON_DIR"; [ "$leg" = "off" ] && dir_var="OFF_DIR"
    echo "=== micro_skyline (obs ${leg}) ==="
    "${!dir_var}/bench/micro_skyline" --threads=1 \
      --benchmark_filter="$FILTER" \
      --benchmark_repetitions="$REPS" \
      --benchmark_format=json \
      --benchmark_out="$TMP_DIR/obs_${leg}.json" \
      --benchmark_out_format=json >/dev/null
  done

  python3 - "$TMP_DIR" "$REPS" "$OUT" <<'EOF'
import json, os, sys

tmp_dir, reps, out_path = sys.argv[1], int(sys.argv[2]), sys.argv[3]

def load(leg):
    """name -> {"median": ns, "stddev": ns} from repetition aggregates."""
    with open(os.path.join(tmp_dir, f"obs_{leg}.json")) as f:
        report = json.load(f)
    out = {}
    for b in report["benchmarks"]:
        agg = b.get("aggregate_name")
        if agg not in ("median", "stddev"):
            continue
        name = b.get("run_name", b["name"])
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        out.setdefault(name, {})[agg] = b["real_time"] * scale
    return out

on, off = load("on"), load("off")
snapshot = {**json.loads(os.environ["HOST_META"]),
            "repetitions": reps, "benchmarks": []}
for name in on:
    if name not in off:
        continue
    on_ns, off_ns = on[name]["median"], off[name]["median"]
    raw = (on_ns - off_ns) / off_ns if off_ns else 0.0
    # Clamp at the noise floor: a delta inside the combined stddev of
    # the two legs is indistinguishable from repetition noise.
    noise = ((on[name].get("stddev", 0.0) + off[name].get("stddev", 0.0))
             / off_ns if off_ns else 0.0)
    snapshot["benchmarks"].append({
        "name": name,
        "median_ops_per_sec_obs_on": 1e9 / on_ns if on_ns else 0.0,
        "median_ops_per_sec_obs_off": 1e9 / off_ns if off_ns else 0.0,
        # > 0 means the instrumentation costs that fraction of runtime.
        "span_overhead_fraction": raw if abs(raw) > noise else 0.0,
        "span_overhead_fraction_raw": raw,
        "noise_floor_fraction": noise,
    })

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")

print(f"wrote {out_path} ({len(snapshot['benchmarks'])} benchmarks, "
      f"{reps} reps)")
for b in snapshot["benchmarks"]:
    print(f"  {b['name']:<40} overhead "
          f"{100.0 * b['span_overhead_fraction']:+.2f}% "
          f"(raw {100.0 * b['span_overhead_fraction_raw']:+.2f}%)")
EOF
  exit 0
fi

BUILD_DIR="${1:-build}"
THREADS="${2:-$(nproc)}"
REPS="${3:-3}"
if [ "$REPS" -lt 3 ]; then REPS=3; fi
# The parallel leg must actually engage the pool; on a 1-core host
# compare against an (oversubscribed) 2-thread run rather than itself.
if [ "$THREADS" -le 1 ]; then THREADS=2; fi
OUT="BENCH_parallel.json"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

# Filter to the suites with pool-backed parallel paths; the rest of the
# micro benches measure serial kernels and would only add noise here.
declare -A FILTERS=(
  [micro_skyline]='BM_PeelFirstSkyline|BM_FullLayering'
  [micro_lgm]='BM_LgmSimDamerau|BM_LgmIndividualScores'
  [micro_ml]='BM_FitRandomForest|BM_FitExtraTrees|BM_FitGradientBoosting'
)

cmake --build "$BUILD_DIR" -j --target micro_skyline micro_lgm micro_ml

for bench in micro_skyline micro_lgm micro_ml; do
  for t in 1 "$THREADS"; do
    echo "=== $bench --threads=$t ==="
    "$BUILD_DIR/bench/$bench" --threads="$t" \
      --benchmark_filter="${FILTERS[$bench]}" \
      --benchmark_repetitions="$REPS" \
      --benchmark_format=json \
      --benchmark_out="$TMP_DIR/${bench}_t${t}.json" \
      --benchmark_out_format=json >/dev/null
  done
done

python3 - "$TMP_DIR" "$THREADS" "$REPS" "$OUT" <<'EOF'
import json, os, sys

tmp_dir, threads = sys.argv[1], int(sys.argv[2])
reps, out_path = int(sys.argv[3]), sys.argv[4]

def load(bench, t):
    """name -> median real_time in ns from repetition aggregates."""
    with open(os.path.join(tmp_dir, f"{bench}_t{t}.json")) as f:
        report = json.load(f)
    out = {}
    for b in report["benchmarks"]:
        if b.get("aggregate_name") != "median":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        out[b.get("run_name", b["name"])] = b["real_time"] * scale
    return out

snapshot = {**json.loads(os.environ["HOST_META"]),
            "threads": threads, "repetitions": reps, "benchmarks": []}
for bench in ("micro_skyline", "micro_lgm", "micro_ml"):
    serial, parallel = load(bench, 1), load(bench, threads)
    for name in serial:
        if name not in parallel:
            continue
        s_ns, p_ns = serial[name], parallel[name]
        snapshot["benchmarks"].append({
            "suite": bench,
            "name": name,
            "median_ops_per_sec_1_thread": 1e9 / s_ns if s_ns else 0.0,
            f"median_ops_per_sec_{threads}_threads":
                1e9 / p_ns if p_ns else 0.0,
            "speedup": s_ns / p_ns if p_ns else 0.0,
        })

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")

print(f"wrote {out_path} ({len(snapshot['benchmarks'])} benchmarks, "
      f"threads={threads}, reps={reps}, "
      f"host_cpus={snapshot['host_cpus']})")
for b in snapshot["benchmarks"]:
    print(f"  {b['name']:<40} speedup x{b['speedup']:.2f}")
EOF
