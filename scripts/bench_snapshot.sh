#!/usr/bin/env bash
# Parallel-speedup snapshot: runs the micro_skyline, micro_lgm and
# micro_ml suites at --threads=1 and --threads=N (default: all cores)
# and writes BENCH_parallel.json at the repo root with per-benchmark
# ops/sec plus the N-thread speedup over the serial run.
#
#   scripts/bench_snapshot.sh [build-dir] [threads]
#
# Speedup is hardware-dependent: on a single-core host the parallel run
# degenerates to the serial path and speedups hover around 1.0 — the
# recorded host_cpus field says which case a snapshot captured.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
THREADS="${2:-$(nproc)}"
# The parallel leg must actually engage the pool; on a 1-core host
# compare against an (oversubscribed) 2-thread run rather than itself.
if [ "$THREADS" -le 1 ]; then THREADS=2; fi
OUT="BENCH_parallel.json"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

# Filter to the suites with pool-backed parallel paths; the rest of the
# micro benches measure serial kernels and would only add noise here.
declare -A FILTERS=(
  [micro_skyline]='BM_PeelFirstSkyline|BM_FullLayering'
  [micro_lgm]='BM_LgmSimDamerau|BM_LgmIndividualScores'
  [micro_ml]='BM_FitRandomForest|BM_FitExtraTrees|BM_FitGradientBoosting'
)

cmake --build "$BUILD_DIR" -j --target micro_skyline micro_lgm micro_ml

for bench in micro_skyline micro_lgm micro_ml; do
  for t in 1 "$THREADS"; do
    echo "=== $bench --threads=$t ==="
    "$BUILD_DIR/bench/$bench" --threads="$t" \
      --benchmark_filter="${FILTERS[$bench]}" \
      --benchmark_format=json \
      --benchmark_out="$TMP_DIR/${bench}_t${t}.json" \
      --benchmark_out_format=json >/dev/null
  done
done

python3 - "$TMP_DIR" "$THREADS" "$OUT" <<'EOF'
import json, os, sys

tmp_dir, threads, out_path = sys.argv[1], int(sys.argv[2]), sys.argv[3]

def load(bench, t):
    with open(os.path.join(tmp_dir, f"{bench}_t{t}.json")) as f:
        report = json.load(f)
    return {b["name"]: b for b in report["benchmarks"]
            if b.get("run_type", "iteration") == "iteration"}

snapshot = {"host_cpus": os.cpu_count(), "threads": threads,
            "benchmarks": []}
for bench in ("micro_skyline", "micro_lgm", "micro_ml"):
    serial, parallel = load(bench, 1), load(bench, threads)
    for name in serial:
        if name not in parallel:
            continue
        s_ns, p_ns = serial[name]["real_time"], parallel[name]["real_time"]
        unit = serial[name].get("time_unit", "ns")
        scale = {"ns": 1e9, "us": 1e6, "ms": 1e3, "s": 1.0}[unit]
        snapshot["benchmarks"].append({
            "suite": bench,
            "name": name,
            "ops_per_sec_1_thread": scale / s_ns if s_ns else 0.0,
            f"ops_per_sec_{threads}_threads":
                scale / p_ns if p_ns else 0.0,
            "speedup": s_ns / p_ns if p_ns else 0.0,
        })

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")

print(f"wrote {out_path} ({len(snapshot['benchmarks'])} benchmarks, "
      f"threads={threads}, host_cpus={snapshot['host_cpus']})")
for b in snapshot["benchmarks"]:
    print(f"  {b['name']:<40} speedup x{b['speedup']:.2f}")
EOF
