#!/usr/bin/env bash
# Full verification: tier-1 build + tests, then a second build with the
# observability instrumentation compiled out (SKYEX_OBS=OFF) to prove
# every macro site degrades to a no-op and the obs API still links.
#
#   scripts/verify.sh [build-dir] [obs-off-build-dir]

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OBS_OFF_DIR="${2:-build-obs-off}"

echo "=== tier-1: default build (SKYEX_OBS=ON) ==="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo
echo "=== stripped build (SKYEX_OBS=OFF) ==="
cmake -B "$OBS_OFF_DIR" -S . -DSKYEX_OBS=OFF
cmake --build "$OBS_OFF_DIR" -j
# The obs suites exercise the registry/collector API; the rest of the
# suite proves the pipeline is unaffected by compiled-out macros.
ctest --test-dir "$OBS_OFF_DIR" --output-on-failure -j "$(nproc)" \
      -R "Obs|Skyline|CliTest"

echo
echo "verify: OK"
