#!/usr/bin/env bash
# Full verification: tier-1 build + tests, then stripped builds with
# the observability instrumentation + sampling profiler
# (SKYEX_OBS=OFF + SKYEX_PROF=OFF) and the fault-injection points
# (SKYEX_FAULTS=OFF) compiled out, to prove every macro site degrades
# to a no-op and the APIs still link.
#
#   scripts/verify.sh [build-dir] [obs-off-build-dir] [faults-off-build-dir]

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OBS_OFF_DIR="${2:-build-obs-off}"
FAULTS_OFF_DIR="${3:-build-faults-off}"

echo "=== tier-1: default build (SKYEX_OBS=ON) ==="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo
echo "=== stripped build (SKYEX_OBS=OFF, SKYEX_PROF=OFF) ==="
cmake -B "$OBS_OFF_DIR" -S . -DSKYEX_OBS=OFF -DSKYEX_PROF=OFF
cmake --build "$OBS_OFF_DIR" -j
# The obs suites exercise the registry/collector API; flight + serve
# (incl. the smoke) prove request ids and flight timelines survive the
# stripped build; ProfDisabled pins the profiler macros as no-ops;
# Quality* proves the linkage-quality hooks are compiled out (Enable
# refuses) while the audit/profile library still links; the rest
# proves the pipeline is unaffected by compiled-out macros.
ctest --test-dir "$OBS_OFF_DIR" --output-on-failure -j "$(nproc)" \
      -R "Obs|Flight|Skyline|ServeTest|ProfDisabled|Quality|serve_smoke|CliTest"

echo
echo "=== stripped build (SKYEX_FAULTS=OFF) ==="
cmake -B "$FAULTS_OFF_DIR" -S . -DSKYEX_FAULTS=OFF
cmake --build "$FAULTS_OFF_DIR" -j
# SKYEX_FAULT_FIRE sites compile to no-ops: the registry never fires
# even when armed (FaultDisabled), and serving works untouched.
ctest --test-dir "$FAULTS_OFF_DIR" --output-on-failure -j "$(nproc)" \
      -R "FaultDisabled|CircuitBreaker|ServeTest|CliTest"

echo
echo "verify: OK"
